"""Recursive-descent parser for ECL.

The grammar is the C89 statement/expression core plus the ECL additions:

* ``module name (input|output [pure] type name, ...) { ... }``
* local ``signal [pure] type name;`` declarations
* the reactive statements ``emit``, ``emit_v``, ``await``, ``halt``,
  ``present``, ``do ... abort/weak_abort/suspend``, ``par``

Per the paper's footnote 2, file-scope variables are rejected ("currently
there is no way to support global and static variables").

``switch`` is accepted and desugared into an ``if``/``else`` chain; because
the desugaring cannot express fall-through, every non-empty case must end
in ``break`` or ``return``.
"""

from __future__ import annotations

from ..errors import ParseError, ScopeError
from . import ast
from .lexer import tokenize
from .preprocessor import preprocess
from .tokens import TokenKind
from .types import (
    ArrayType,
    PURE,
    PointerType,
    StructType,
    TypeTable,
    UnionType,
)

# Binary operator precedence (C), highest binds tightest.
_BINARY_PRECEDENCE = {
    "*": 10, "/": 10, "%": 10,
    "+": 9, "-": 9,
    "<<": 8, ">>": 8,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "==": 6, "!=": 6,
    "&": 5,
    "^": 4,
    "|": 3,
    "&&": 2,
    "||": 1,
}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])

_TYPE_KEYWORDS = frozenset(
    ["void", "char", "short", "int", "long", "signed", "unsigned",
     "bool", "struct", "union", "const"]
)


class Parser:
    """Parses one token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens, types=None):
        self.tokens = tokens
        self.pos = 0
        self.types = types if types is not None else TypeTable()
        self._anon_counter = 0

    # ------------------------------------------------------------------
    # Token-stream helpers

    def _peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self):
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _at_punct(self, spelling, offset=0):
        return self._peek(offset).is_punct(spelling)

    def _at_keyword(self, word, offset=0):
        return self._peek(offset).is_keyword(word)

    def _accept_punct(self, spelling):
        if self._at_punct(spelling):
            return self._next()
        return None

    def _accept_keyword(self, word):
        if self._at_keyword(word):
            return self._next()
        return None

    def _expect_punct(self, spelling):
        token = self._peek()
        if not token.is_punct(spelling):
            raise ParseError("expected %r, found %r" % (spelling, str(token)), token.span)
        return self._next()

    def _expect_keyword(self, word):
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError("expected %r, found %r" % (word, str(token)), token.span)
        return self._next()

    def _expect_ident(self, what="identifier"):
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError("expected %s, found %r" % (what, str(token)), token.span)
        return self._next()

    def _error(self, message):
        raise ParseError(message, self._peek().span)

    # ------------------------------------------------------------------
    # Program structure

    def parse_program(self):
        items = []
        start = self._peek().span
        while self._peek().kind is not TokenKind.EOF:
            items.append(self._parse_top_level())
        return ast.Program(span=start, items=tuple(items))

    def _parse_top_level(self):
        token = self._peek()
        if token.is_keyword("typedef"):
            return self._parse_typedef()
        if token.is_keyword("module"):
            return self._parse_module()
        if token.is_keyword("static"):
            raise ScopeError(
                "static variables are not supported (paper footnote 2)", token.span
            )
        if token.is_keyword("struct") or token.is_keyword("union"):
            # Could be a tag definition followed by ';', or a function
            # returning a struct.  Decide by looking past the definition.
            return self._parse_tag_or_function()
        if self._looks_like_type():
            return self._parse_function_or_global()
        raise ParseError("expected a declaration, found %r" % str(token), token.span)

    def _parse_typedef(self):
        start = self._expect_keyword("typedef").span
        base = self._parse_type_specifier()
        name_token = self._expect_ident("typedef name")
        declared = self._parse_array_suffix(base)
        self._expect_punct(";")
        if isinstance(declared, (StructType, UnionType)) \
                and declared.tag.startswith("<"):
            # Let printers render "packet_t" instead of "union <anon3>".
            object.__setattr__(declared, "typedef_alias", name_token.value)
        self.types.define_typedef(name_token.value, declared, name_token.span)
        return ast.TypedefDecl(span=start.merge(name_token.span),
                               name=name_token.value, type=declared)

    def _parse_tag_or_function(self):
        keyword = self._peek()
        # "struct Tag { ... };"  => tag definition
        # "struct Tag ident ..." => declaration using the tag
        if (self._peek(1).kind is TokenKind.IDENT and self._at_punct("{", 2)) or \
                self._at_punct("{", 1):
            tag_type = self._parse_type_specifier()
            self._expect_punct(";")
            return ast.TagDecl(span=keyword.span, tag=tag_type.tag, type=tag_type)
        return self._parse_function_or_global()

    def _parse_function_or_global(self):
        start = self._peek().span
        base = self._parse_type_specifier()
        while self._accept_punct("*"):
            base = PointerType(base)
        name_token = self._expect_ident("function or variable name")
        if self._at_punct("("):
            return self._parse_function(base, name_token, start)
        raise ScopeError(
            "global variables are not supported (paper footnote 2)",
            name_token.span,
        )

    def _parse_function(self, return_type, name_token, start):
        self._expect_punct("(")
        params = []
        if not self._at_punct(")"):
            if self._at_keyword("void") and self._at_punct(")", 1):
                self._next()
            else:
                while True:
                    params.append(self._parse_func_param())
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FuncDef(
            span=start.merge(body.span),
            name=name_token.value,
            return_type=return_type,
            params=tuple(params),
            body=body,
        )

    def _parse_func_param(self):
        param_type = self._parse_type_specifier()
        while self._accept_punct("*"):
            param_type = PointerType(param_type)
        name_token = self._expect_ident("parameter name")
        param_type = self._parse_array_suffix(param_type)
        if isinstance(param_type, ArrayType):
            # C decays array parameters to pointers.
            param_type = PointerType(param_type.element)
        return ast.FuncParam(span=name_token.span, name=name_token.value,
                             type=param_type)

    # ------------------------------------------------------------------
    # Modules

    def _parse_module(self):
        start = self._expect_keyword("module").span
        name_token = self._expect_ident("module name")
        self._expect_punct("(")
        signals = []
        if not self._at_punct(")"):
            while True:
                signals.append(self._parse_signal_param())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.ModuleDecl(
            span=start.merge(body.span),
            name=name_token.value,
            signals=tuple(signals),
            body=body,
        )

    def _parse_signal_param(self):
        token = self._peek()
        if token.is_keyword("input"):
            direction = "input"
        elif token.is_keyword("output"):
            direction = "output"
        else:
            raise ParseError(
                "signal parameter must start with 'input' or 'output'", token.span
            )
        self._next()
        if self._accept_keyword("pure"):
            sig_type = PURE
        else:
            sig_type = self._parse_type_specifier()
        name_token = self._expect_ident("signal name")
        return ast.SignalParam(
            span=token.span.merge(name_token.span),
            direction=direction,
            name=name_token.value,
            type=sig_type,
        )

    # ------------------------------------------------------------------
    # Types

    def _looks_like_type(self, offset=0):
        token = self._peek(offset)
        if token.kind is TokenKind.KEYWORD and token.value in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.IDENT and self.types.is_type_name(token.value):
            # A typedef name starts a declaration only when followed by a
            # declarator (identifier or '*'), not in "packet_t + 1".
            follower = self._peek(offset + 1)
            return follower.kind is TokenKind.IDENT or follower.is_punct("*")
        return False

    def _parse_type_specifier(self):
        """Parse a type specifier (no declarator suffixes)."""
        self._accept_keyword("const")  # accepted, ignored
        token = self._peek()
        if token.is_keyword("struct") or token.is_keyword("union"):
            return self._parse_struct_or_union(token.value)
        if token.kind is TokenKind.KEYWORD and token.value in _TYPE_KEYWORDS:
            return self._parse_builtin_type()
        if token.kind is TokenKind.IDENT and self.types.is_type_name(token.value):
            self._next()
            return self.types.lookup(token.value, token.span)
        raise ParseError("expected a type, found %r" % str(token), token.span)

    def _parse_builtin_type(self):
        words = []
        start = self._peek().span
        while True:
            token = self._peek()
            if token.kind is TokenKind.KEYWORD and token.value in (
                "void", "bool", "char", "short", "int", "long", "signed", "unsigned"
            ):
                words.append(token.value)
                self._next()
            elif token.is_keyword("const"):
                self._next()
            else:
                break
        if not words:
            raise ParseError("expected a type", start)
        name = " ".join(words)
        # Normalize e.g. "unsigned char" / "long unsigned" orderings.
        canonical = " ".join(sorted(words, key=_specifier_order))
        try:
            return self.types.lookup(canonical, start)
        except Exception:
            return self.types.lookup(name, start)

    def _parse_struct_or_union(self, which):
        keyword = self._next()  # struct | union
        tag = None
        if self._peek().kind is TokenKind.IDENT:
            tag = self._next().value
        if not self._at_punct("{"):
            if tag is None:
                raise ParseError("anonymous %s must have a body" % which, keyword.span)
            return self.types.lookup_tag(tag, keyword.span)
        self._expect_punct("{")
        members = []
        while not self._at_punct("}"):
            member_base = self._parse_type_specifier()
            while True:
                member_type = member_base
                while self._accept_punct("*"):
                    member_type = PointerType(member_type)
                member_name = self._expect_ident("member name")
                member_type = self._parse_array_suffix(member_type)
                members.append((member_name.value, member_type))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        self._expect_punct("}")
        if tag is None:
            self._anon_counter += 1
            tag = "<anon%d>" % self._anon_counter
        builder = StructType.build if which == "struct" else UnionType.build
        tag_type = builder(tag, members)
        if not tag.startswith("<"):
            self.types.define_tag(tag, tag_type, keyword.span)
        return tag_type

    def _parse_array_suffix(self, base):
        """Parse zero or more ``[const-expr]`` suffixes (innermost last)."""
        lengths = []
        while self._accept_punct("["):
            if self._accept_punct("]"):
                # Unsized "[]" — legal for parameters, which decay to
                # pointers anyway.
                lengths.append(0)
                continue
            expr = self._parse_expr()
            self._expect_punct("]")
            lengths.append(self._const_eval(expr))
        result = base
        for length in reversed(lengths):
            result = ArrayType(result, length)
        return result

    def _const_eval(self, expr):
        """Evaluate a constant expression used as an array length."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "+":
            return self._const_eval(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b,
                "%": lambda a, b: a % b,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op](left, right)
        raise ParseError("expected a constant expression", expr.span)

    # ------------------------------------------------------------------
    # Statements

    def _parse_block(self):
        start = self._expect_punct("{").span
        body = []
        while not self._at_punct("}"):
            body.append(self._parse_statement())
        end = self._expect_punct("}").span
        return ast.Block(span=start.merge(end), body=tuple(body))

    def _parse_statement(self):
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_punct(";"):
            self._next()
            return ast.Block(span=token.span, body=())
        if token.is_keyword("signal"):
            return self._parse_signal_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(span=token.span)
        if token.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(span=token.span)
        if token.is_keyword("return"):
            self._next()
            value = None if self._at_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return ast.Return(span=token.span, value=value)
        if token.is_keyword("static"):
            raise ScopeError(
                "static variables are not supported (paper footnote 2)", token.span
            )
        # Reactive statements.
        if token.is_keyword("emit") or token.is_keyword("emit_v"):
            return self._parse_emit()
        if token.is_keyword("await"):
            return self._parse_await()
        if token.is_keyword("halt"):
            self._next()
            self._expect_punct("(")
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.Halt(span=token.span)
        if token.is_keyword("present"):
            return self._parse_present()
        if token.is_keyword("par"):
            return self._parse_par()
        # Declarations.
        if self._looks_like_type():
            return self._parse_var_decl()
        # Expression statement.
        expr = self._parse_expr()
        self._expect_punct(";")
        return ast.ExprStmt(span=expr.span, expr=expr)

    def _parse_signal_decl(self):
        start = self._expect_keyword("signal").span
        if self._accept_keyword("pure"):
            sig_type = PURE
        else:
            sig_type = self._parse_type_specifier()
        decls = []
        while True:
            name_token = self._expect_ident("signal name")
            decls.append(ast.SignalDecl(
                span=start.merge(name_token.span),
                name=name_token.value, type=sig_type))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(span=start, body=tuple(decls))

    def _parse_var_decl(self):
        start = self._peek().span
        base = self._parse_type_specifier()
        decls = []
        while True:
            var_type = base
            while self._accept_punct("*"):
                var_type = PointerType(var_type)
            name_token = self._expect_ident("variable name")
            var_type = self._parse_array_suffix(var_type)
            init = None
            if self._accept_punct("="):
                if self._at_punct("{"):
                    raise ParseError(
                        "brace initializers are not supported; assign elements "
                        "explicitly", self._peek().span)
                init = self._parse_assignment()
            decls.append(ast.VarDecl(
                span=start.merge(name_token.span),
                name=name_token.value, type=var_type, init=init))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(span=start, body=tuple(decls))

    def _parse_if(self):
        start = self._expect_keyword("if").span
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        # The paper's Figure 1 uses "if (A) then ..."; accept optional 'then'.
        if self._peek().is_ident("then"):
            self._next()
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return ast.If(span=start, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self):
        start = self._expect_keyword("while").span
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(span=start, cond=cond, body=body)

    def _parse_do(self):
        """``do`` introduces either C do-while or the ECL pre-emption forms
        ``do stmt abort(e)``, ``do stmt weak_abort(e)``, ``do stmt
        suspend(e)`` (paper, statements 5-7)."""
        start = self._expect_keyword("do").span
        body = self._parse_statement()
        token = self._peek()
        if token.is_keyword("while"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.DoWhile(span=start, body=body, cond=cond)
        if token.is_keyword("abort") or token.is_keyword("weak_abort"):
            weak = token.value == "weak_abort"
            self._next()
            self._expect_punct("(")
            cond = self._parse_signal_expr()
            self._expect_punct(")")
            handler = None
            if self._accept_keyword("handle"):
                handler = self._parse_statement()
            else:
                self._accept_punct(";")
            return ast.Abort(span=start, body=body, cond=cond,
                             handler=handler, weak=weak)
        if token.is_keyword("suspend"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_signal_expr()
            self._expect_punct(")")
            self._accept_punct(";")
            return ast.Suspend(span=start, body=body, cond=cond)
        raise ParseError(
            "expected 'while', 'abort', 'weak_abort' or 'suspend' after "
            "'do' body", token.span)

    def _parse_for(self):
        start = self._expect_keyword("for").span
        self._expect_punct("(")
        init = None
        if not self._at_punct(";"):
            if self._looks_like_type():
                init = self._parse_var_decl()
            else:
                expr = self._parse_expr()
                self._expect_punct(";")
                init = ast.ExprStmt(span=expr.span, expr=expr)
        else:
            self._next()
        cond = None
        if not self._at_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";")
        step = None
        if not self._at_punct(")"):
            step = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(span=start, init=init, cond=cond, step=step, body=body)

    def _parse_switch(self):
        start = self._expect_keyword("switch").span
        self._expect_punct("(")
        scrutinee = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct("{")
        cases = []  # (values or None-for-default, [stmts], span)
        while not self._at_punct("}"):
            token = self._peek()
            if token.is_keyword("case"):
                self._next()
                value = self._parse_expr()
                self._expect_punct(":")
                values = [value]
                while self._at_keyword("case"):
                    self._next()
                    values.append(self._parse_expr())
                    self._expect_punct(":")
                cases.append((values, [], token.span))
            elif token.is_keyword("default"):
                self._next()
                self._expect_punct(":")
                cases.append((None, [], token.span))
            else:
                if not cases:
                    raise ParseError("statement before first case label",
                                     token.span)
                cases[-1][1].append(self._parse_statement())
        self._expect_punct("}")
        return self._desugar_switch(start, scrutinee, cases)

    def _desugar_switch(self, span, scrutinee, cases):
        """Rewrite switch into an if/else chain (no fall-through allowed)."""
        default_body = None
        chain = []
        for values, stmts, case_span in cases:
            if stmts and not isinstance(stmts[-1], (ast.Break, ast.Return)):
                raise ParseError(
                    "switch cases must end with 'break' or 'return' "
                    "(fall-through is not supported)", case_span)
            body_stmts = tuple(
                s for s in stmts if not isinstance(s, ast.Break)
            )
            body = ast.Block(span=case_span, body=body_stmts)
            if values is None:
                default_body = body
            else:
                cond = None
                for value in values:
                    test = ast.Binary(span=case_span, op="==",
                                      left=scrutinee, right=value)
                    cond = test if cond is None else ast.Binary(
                        span=case_span, op="||", left=cond, right=test)
                chain.append((cond, body))
        result = default_body
        for cond, body in reversed(chain):
            result = ast.If(span=span, cond=cond, then=body, otherwise=result)
        return result if result is not None else ast.Block(span=span, body=())

    # ------------------------------------------------------------------
    # Reactive statements

    def _parse_emit(self):
        token = self._next()  # emit | emit_v
        with_value = token.value == "emit_v"
        self._expect_punct("(")
        name_token = self._expect_ident("signal name")
        value = None
        if with_value:
            self._expect_punct(",")
            value = self._parse_assignment()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Emit(span=token.span, signal=name_token.value, value=value)

    def _parse_await(self):
        start = self._expect_keyword("await").span
        self._expect_punct("(")
        cond = None
        if not self._at_punct(")"):
            cond = self._parse_signal_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Await(span=start, cond=cond)

    def _parse_present(self):
        start = self._expect_keyword("present").span
        self._expect_punct("(")
        cond = self._parse_signal_expr()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return ast.Present(span=start, cond=cond, then=then,
                           otherwise=otherwise)

    def _parse_par(self):
        start = self._expect_keyword("par").span
        self._expect_punct("{")
        branches = []
        while not self._at_punct("}"):
            branches.append(self._parse_statement())
        end = self._expect_punct("}").span
        if not branches:
            raise ParseError("par must contain at least one branch", start)
        return ast.Par(span=start.merge(end), branches=tuple(branches))

    def _parse_signal_expr(self):
        """Parse a presence expression: names combined with & | ~ (the
        paper also shows && and ||; ! is accepted as a synonym of ~)."""
        expr = self._parse_expr()
        return self._to_signal_expr(expr)

    def _to_signal_expr(self, expr):
        if isinstance(expr, ast.Name):
            return ast.SigRef(span=expr.span, name=expr.id)
        if isinstance(expr, ast.Unary) and expr.op in ("~", "!"):
            return ast.SigNot(span=expr.span,
                              operand=self._to_signal_expr(expr.operand))
        if isinstance(expr, ast.Binary) and expr.op in ("&", "&&"):
            return ast.SigAnd(span=expr.span,
                              left=self._to_signal_expr(expr.left),
                              right=self._to_signal_expr(expr.right))
        if isinstance(expr, ast.Binary) and expr.op in ("|", "||"):
            return ast.SigOr(span=expr.span,
                             left=self._to_signal_expr(expr.left),
                             right=self._to_signal_expr(expr.right))
        raise ParseError(
            "signal expressions may only combine signal names with "
            "&, | and ~", expr.span)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)

    def _parse_expr(self):
        expr = self._parse_assignment()
        while self._at_punct(","):
            comma = self._next()
            right = self._parse_assignment()
            expr = ast.Binary(span=comma.span, op=",", left=expr, right=right)
        return expr

    def _parse_assignment(self):
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            return ast.Assign(span=token.span, op=token.value,
                              target=left, value=value)
        return left

    def _parse_conditional(self):
        cond = self._parse_binary(1)
        if self._accept_punct("?"):
            then = self._parse_expr()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return ast.Cond(span=cond.span, cond=cond, then=then,
                            otherwise=otherwise)
        return cond

    def _parse_binary(self, min_precedence):
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(span=token.span, op=token.value,
                              left=left, right=right)

    def _parse_unary(self):
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value in ("-", "+", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(span=token.span, op=token.value, operand=operand)
        if token.is_punct("++") or token.is_punct("--"):
            self._next()
            target = self._parse_unary()
            return ast.IncDec(span=token.span, op=token.value,
                              target=target, postfix=False)
        if token.is_keyword("sizeof"):
            self._next()
            if self._at_punct("(") and self._looks_like_type(1):
                self._expect_punct("(")
                size_type = self._parse_type_specifier()
                size_type = self._parse_abstract_suffix(size_type)
                self._expect_punct(")")
                return ast.SizeofType(span=token.span, type=size_type)
            operand = self._parse_unary()
            return ast.SizeofExpr(span=token.span, operand=operand)
        # Cast: '(' type ')' unary
        if self._at_punct("(") and self._looks_like_cast():
            self._expect_punct("(")
            cast_type = self._parse_type_specifier()
            cast_type = self._parse_abstract_suffix(cast_type)
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(span=token.span, type=cast_type, operand=operand)
        return self._parse_postfix()

    def _looks_like_cast(self):
        """After '(' — is this a type name followed by ')' or '*'?"""
        token = self._peek(1)
        if token.kind is TokenKind.KEYWORD and token.value in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.IDENT and self.types.is_type_name(token.value):
            follower = self._peek(2)
            return follower.is_punct(")") or follower.is_punct("*")
        return False

    def _parse_abstract_suffix(self, base):
        while self._accept_punct("*"):
            base = PointerType(base)
        return self._parse_array_suffix(base)

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = ast.Index(span=token.span, base=expr, index=index)
            elif token.is_punct("."):
                self._next()
                name_token = self._expect_ident("member name")
                expr = ast.Member(span=token.span, base=expr,
                                  name=name_token.value, arrow=False)
            elif token.is_punct("->"):
                self._next()
                name_token = self._expect_ident("member name")
                expr = ast.Member(span=token.span, base=expr,
                                  name=name_token.value, arrow=True)
            elif token.is_punct("++") or token.is_punct("--"):
                self._next()
                expr = ast.IncDec(span=token.span, op=token.value,
                                  target=expr, postfix=True)
            elif token.is_punct("(") and isinstance(expr, ast.Name):
                self._next()
                args = []
                if not self._at_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(span=expr.span, func=expr.id, args=tuple(args))
            else:
                return expr

    def _parse_primary(self):
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL or token.kind is TokenKind.CHAR_LITERAL:
            self._next()
            return ast.IntLit(span=token.span, value=token.value)
        if token.kind is TokenKind.STRING_LITERAL:
            self._next()
            return ast.StrLit(span=token.span, value=token.value)
        if token.kind is TokenKind.IDENT:
            self._next()
            return ast.Name(span=token.span, id=token.value)
        if token.is_punct("("):
            self._next()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError("expected an expression, found %r" % str(token),
                         token.span)


def _specifier_order(word):
    order = ["unsigned", "signed", "long", "short", "char", "int", "void", "bool"]
    return order.index(word) if word in order else len(order)


def parse_tokens(tokens, types=None):
    """Parse a token list into a Program."""
    return Parser(tokens, types).parse_program()


def parse_text(text, filename="<string>", types=None, include_paths=(),
               predefined=None, run_preprocessor=True):
    """Preprocess, lex and parse ECL source text.

    Returns ``(program, type_table)``.
    """
    if run_preprocessor:
        text = preprocess(text, filename, include_paths, predefined)
    tokens = tokenize(text, filename)
    table = types if types is not None else TypeTable()
    program = parse_tokens(tokens, table)
    return program, table
