"""A small C preprocessor: object-like and function-like ``#define``.

The paper's examples rely on ``#define`` constants (``HDRSIZE`` etc.) and on
macro arithmetic (``PKTSIZE HDRSIZE+DATASIZE+CRCSIZE``).  This module
implements the subset needed for ECL sources:

* ``#define NAME replacement`` (object-like),
* ``#define NAME(a, b) replacement`` (function-like, no variadics),
* ``#undef NAME``,
* ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#endif`` conditional blocks,
* ``#include "file"`` resolved against an include-path list.

Expansion is textual and token-aware enough not to replace names inside
string literals, character literals, or comments.  Recursive macros expand
up to a fixed depth and then raise.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from ..errors import PreprocessorError
from .source import SourceBuffer

_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)\s*(.*)$")
_DEFINE_RE = re.compile(r"^(\w+)(\(([^)]*)\))?\s*(.*)$", re.S)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
_MAX_EXPANSION_DEPTH = 64


@dataclass
class Macro:
    """A preprocessor macro definition."""

    name: str
    params: object  # None for object-like, list of names otherwise
    body: str

    @property
    def is_function_like(self):
        return self.params is not None


class Preprocessor:
    """Expands directives and macros in ECL source text.

    ``include_paths`` lists directories searched by ``#include "..."``;
    ``predefined`` seeds the macro table (name -> body text).
    """

    def __init__(self, include_paths=(), predefined=None):
        self.include_paths = list(include_paths)
        self.macros = {}
        # True while scanning the inside of a /* ... */ that started on an
        # earlier line; macro expansion and directives are disabled there.
        self._in_comment = False
        for name, body in (predefined or {}).items():
            self.macros[name] = Macro(name, None, str(body))

    def process(self, text, filename="<string>"):
        """Return the preprocessed text.

        Line structure is preserved for non-directive lines so that spans in
        later phases still point at the original line numbers; directive
        lines are replaced by empty lines.
        """
        buffer = SourceBuffer(text, filename)
        output_lines = []
        # Stack of booleans: is the current conditional region active?
        active_stack = []
        # Tracks whether an #else was already seen at each level.
        else_seen = []
        lines = text.split("\n")
        index = 0
        while index < len(lines):
            line = lines[index]
            lineno = index + 1
            # Continuation lines for directives.
            while line.rstrip().endswith("\\") and index + 1 < len(lines):
                line = line.rstrip()[:-1] + " " + lines[index + 1]
                output_lines.append("")
                index += 1
            match = None if self._in_comment else _DIRECTIVE_RE.match(line)
            active = all(active_stack)
            if match:
                name, rest = match.group(1), match.group(2).strip()
                # Comments are not part of directive arguments.
                rest = re.sub(r"/\*.*?\*/", " ", rest)
                rest = re.sub(r"//.*", "", rest).strip()
                self._directive(
                    name, rest, active, active_stack, else_seen,
                    output_lines, buffer, filename, lineno,
                )
            elif active:
                output_lines.append(self._expand_line(line, filename, lineno))
            else:
                output_lines.append("")
            index += 1
        if active_stack:
            raise PreprocessorError(
                "unterminated #ifdef/#ifndef", buffer.span(len(text), len(text))
            )
        return "\n".join(output_lines)

    # ------------------------------------------------------------------
    # Directive handling

    def _directive(
        self, name, rest, active, active_stack, else_seen,
        output_lines, buffer, filename, lineno,
    ):
        span = None  # spans are line-based here
        if name == "ifdef":
            active_stack.append(rest.split()[0] in self.macros if rest else False)
            else_seen.append(False)
            output_lines.append("")
        elif name == "ifndef":
            active_stack.append(rest.split()[0] not in self.macros if rest else True)
            else_seen.append(False)
            output_lines.append("")
        elif name == "else":
            if not active_stack or else_seen[-1]:
                raise PreprocessorError("#else without matching #ifdef", span)
            active_stack[-1] = not active_stack[-1]
            else_seen[-1] = True
            output_lines.append("")
        elif name == "endif":
            if not active_stack:
                raise PreprocessorError("#endif without matching #ifdef", span)
            active_stack.pop()
            else_seen.pop()
            output_lines.append("")
        elif not active:
            output_lines.append("")
        elif name == "define":
            self._define(rest)
            output_lines.append("")
        elif name == "undef":
            self.macros.pop(rest.split()[0], None) if rest else None
            output_lines.append("")
        elif name == "include":
            included = self._include(rest, filename)
            output_lines.extend(included.split("\n"))
        elif name == "pragma":
            output_lines.append("")
        else:
            raise PreprocessorError("unsupported directive #%s" % name, span)

    def _define(self, rest):
        match = _DEFINE_RE.match(rest)
        if not match:
            raise PreprocessorError("malformed #define: %r" % rest)
        name = match.group(1)
        params = None
        if match.group(2) is not None:
            params_text = match.group(3).strip()
            params = (
                [p.strip() for p in params_text.split(",")] if params_text else []
            )
            for param in params:
                if not _IDENT_RE.fullmatch(param):
                    raise PreprocessorError(
                        "bad macro parameter %r in #define %s" % (param, name)
                    )
        self.macros[name] = Macro(name, params, match.group(4).strip())

    def _include(self, rest, filename):
        rest = rest.strip()
        if len(rest) >= 2 and rest[0] == '"' and rest[-1] == '"':
            target = rest[1:-1]
        elif len(rest) >= 2 and rest[0] == "<" and rest[-1] == ">":
            target = rest[1:-1]
        else:
            raise PreprocessorError("malformed #include: %r" % rest)
        search = list(self.include_paths)
        base = os.path.dirname(filename)
        if base:
            search.insert(0, base)
        search.append(".")
        for directory in search:
            path = os.path.join(directory, target)
            if os.path.isfile(path):
                with open(path) as handle:
                    return self.process(handle.read(), path)
        raise PreprocessorError("cannot find include file %r" % target)

    # ------------------------------------------------------------------
    # Macro expansion

    def _expand_line(self, line, filename, lineno):
        """Expand macros on one line, comment- and literal-aware."""
        entry_state = self._in_comment
        for _round in range(_MAX_EXPANSION_DEPTH):
            self._in_comment = entry_state
            expanded, changed = self._expand_once(line, filename, lineno)
            if not changed:
                return expanded
            line = expanded
        raise PreprocessorError(
            "macro expansion too deep (recursive macro?) at %s:%d"
            % (filename, lineno)
        )

    def _expand_once(self, line, filename, lineno):
        out = []
        index = 0
        changed = False
        while index < len(line):
            if self._in_comment:
                end = line.find("*/", index)
                if end < 0:
                    out.append(line[index:])
                    index = len(line)
                    continue
                out.append(line[index:end + 2])
                index = end + 2
                self._in_comment = False
                continue
            char = line[index]
            if char == "/" and line[index + 1:index + 2] == "/":
                out.append(line[index:])
                break
            if char == "/" and line[index + 1:index + 2] == "*":
                self._in_comment = True
                out.append("/*")
                index += 2
                continue
            if char in "\"'":
                end = self._skip_literal(line, index, filename, lineno)
                out.append(line[index:end])
                index = end
                continue
            match = _IDENT_RE.match(line, index)
            if not match:
                out.append(char)
                index += 1
                continue
            word = match.group(0)
            index = match.end()
            macro = self.macros.get(word)
            if macro is None:
                out.append(word)
                continue
            if macro.is_function_like:
                args, index, found = self._read_macro_args(
                    line, index, filename, lineno
                )
                if not found:
                    out.append(word)
                    continue
                if len(args) != len(macro.params):
                    raise PreprocessorError(
                        "macro %s expects %d arguments, got %d at %s:%d"
                        % (word, len(macro.params), len(args), filename, lineno)
                    )
                body = self._substitute_params(macro, args)
            else:
                body = macro.body
            out.append("(%s)" % body if _needs_parens(body) else body)
            changed = True
        return "".join(out), changed

    @staticmethod
    def _skip_literal(line, index, filename, lineno):
        quote = line[index]
        end = index + 1
        while end < len(line):
            if line[end] == "\\":
                end += 2
                continue
            if line[end] == quote:
                return end + 1
            end += 1
        raise PreprocessorError(
            "unterminated literal at %s:%d" % (filename, lineno)
        )

    @staticmethod
    def _read_macro_args(line, index, filename, lineno):
        """Parse ``(a, b, ...)`` after a function-like macro name."""
        probe = index
        while probe < len(line) and line[probe] in " \t":
            probe += 1
        if probe >= len(line) or line[probe] != "(":
            return [], index, False
        probe += 1
        args, current, depth = [], [], 0
        while probe < len(line):
            char = line[probe]
            if char in "\"'":
                end = Preprocessor._skip_literal(line, probe, filename, lineno)
                current.append(line[probe:end])
                probe = end
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                if depth == 0:
                    args.append("".join(current).strip())
                    if args == [""]:
                        args = []
                    return args, probe + 1, True
                depth -= 1
            elif char == "," and depth == 0:
                args.append("".join(current).strip())
                current = []
                probe += 1
                continue
            current.append(char)
            probe += 1
        raise PreprocessorError(
            "unterminated macro argument list at %s:%d" % (filename, lineno)
        )

    @staticmethod
    def _substitute_params(macro, args):
        """Replace parameter names in the macro body by argument text."""
        mapping = dict(zip(macro.params, args))
        out = []
        index = 0
        body = macro.body
        while index < len(body):
            match = _IDENT_RE.match(body, index)
            if match:
                word = match.group(0)
                out.append(mapping.get(word, word))
                index = match.end()
            else:
                out.append(body[index])
                index += 1
        return "".join(out)


def _needs_parens(body):
    """Parenthesize multi-token arithmetic bodies to keep precedence."""
    stripped = body.strip()
    if not stripped:
        return False
    if _IDENT_RE.fullmatch(stripped) or stripped.isdigit():
        return False
    return any(op in stripped for op in "+-*/%<>|&^?")


def preprocess(text, filename="<string>", include_paths=(), predefined=None):
    """Convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(include_paths, predefined).process(text, filename)
