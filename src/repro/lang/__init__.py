"""ECL language front end: preprocessor, lexer, parser, AST, types.

The paper's phase-1 input ("An ECL file is parsed ... using a standard
C/C++ parser") is reproduced by :func:`parse_text`, which returns the AST
(:class:`repro.lang.ast.Program`) plus the populated type table.
"""

from . import ast
from .lexer import Lexer, tokenize
from .parser import Parser, parse_text, parse_tokens
from .preprocessor import Preprocessor, preprocess
from .printer import Printer, to_text, type_text
from .source import SourceBuffer, Span
from .tokens import Token, TokenKind
from .types import (
    ArrayType,
    BOOL,
    BoolType,
    CHAR,
    Field,
    INT,
    IntType,
    PURE,
    PointerType,
    PureType,
    StructType,
    TypeTable,
    UCHAR,
    UINT,
    UnionType,
    VOID,
    VoidType,
    WORD_SIZE,
    common_type,
)

__all__ = [
    "ast",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_text",
    "parse_tokens",
    "Preprocessor",
    "preprocess",
    "Printer",
    "to_text",
    "type_text",
    "SourceBuffer",
    "Span",
    "Token",
    "TokenKind",
    "ArrayType",
    "BOOL",
    "BoolType",
    "CHAR",
    "Field",
    "INT",
    "IntType",
    "PURE",
    "PointerType",
    "PureType",
    "StructType",
    "TypeTable",
    "UCHAR",
    "UINT",
    "UnionType",
    "VOID",
    "VoidType",
    "WORD_SIZE",
    "common_type",
]
