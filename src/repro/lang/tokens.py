"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .source import Span


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENT = auto()
    KEYWORD = auto()
    INT_LITERAL = auto()
    CHAR_LITERAL = auto()
    STRING_LITERAL = auto()
    PUNCT = auto()
    EOF = auto()


#: C keywords recognized by the ECL front end (the supported C subset).
C_KEYWORDS = frozenset(
    [
        "break",
        "case",
        "char",
        "const",
        "continue",
        "default",
        "do",
        "double",
        "else",
        "enum",
        "float",
        "for",
        "if",
        "int",
        "long",
        "return",
        "short",
        "signed",
        "sizeof",
        "static",
        "struct",
        "switch",
        "typedef",
        "union",
        "unsigned",
        "void",
        "while",
    ]
)

#: Keywords added by ECL on top of C (Section "ECL Statements" of the paper).
ECL_KEYWORDS = frozenset(
    [
        "abort",
        "await",
        "bool",
        "emit",
        "emit_v",
        "halt",
        "handle",
        "input",
        "module",
        "output",
        "par",
        "present",
        "pure",
        "signal",
        "suspend",
        "weak_abort",
    ]
)

KEYWORDS = C_KEYWORDS | ECL_KEYWORDS

#: Multi-character punctuators, longest first so the lexer can greedy-match.
PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` is the raw spelling for identifiers/keywords/punctuators and
    the decoded value for literals (an ``int`` for integer and character
    literals, a ``str`` for string literals).
    """

    kind: TokenKind
    value: object
    span: Span
    text: str = ""

    def is_punct(self, spelling):
        return self.kind is TokenKind.PUNCT and self.value == spelling

    def is_keyword(self, word):
        return self.kind is TokenKind.KEYWORD and self.value == word

    def is_ident(self, name=None):
        if self.kind is not TokenKind.IDENT:
            return False
        return name is None or self.value == name

    def __str__(self):
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return str(self.text or self.value)
