"""Source-text bookkeeping: files, positions, spans.

The lexer stamps every token with a :class:`Span`; later phases propagate
spans onto AST nodes, kernel statements and error messages so that a
diagnostic for a generated EFSM transition can still point at the ECL line
it came from.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A 1-based line/column position inside a named source buffer."""

    line: int
    column: int

    def __str__(self):
        return "%d:%d" % (self.line, self.column)


@dataclass(frozen=True)
class Span:
    """A contiguous region of one source buffer."""

    filename: str
    start: Position
    end: Position

    def __str__(self):
        return "%s:%s" % (self.filename, self.start)

    @staticmethod
    def point(filename, line, column):
        """A zero-width span, for synthesized constructs."""
        pos = Position(line, column)
        return Span(filename, pos, pos)

    def merge(self, other):
        """The smallest span covering ``self`` and ``other``."""
        if other is None:
            return self
        first, last = self, other
        if (last.start.line, last.start.column) < (first.start.line, first.start.column):
            first, last = last, first
        return Span(self.filename, first.start, last.end)


#: Span used for nodes the compiler invents (glue code, expansions).
SYNTHETIC = Span.point("<synthetic>", 0, 0)


class SourceBuffer:
    """A named piece of program text with line/column arithmetic."""

    def __init__(self, text, filename="<string>"):
        self.text = text
        self.filename = filename
        # Offsets of the first character of each line, for offset->position.
        self._line_starts = [0]
        for index, char in enumerate(text):
            if char == "\n":
                self._line_starts.append(index + 1)

    def position_at(self, offset):
        """Translate a character offset into a :class:`Position`."""
        if offset < 0:
            offset = 0
        if offset > len(self.text):
            offset = len(self.text)
        # Binary search over line starts.
        low, high = 0, len(self._line_starts) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._line_starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        return Position(low + 1, offset - self._line_starts[low] + 1)

    def span(self, start_offset, end_offset):
        """A :class:`Span` between two character offsets."""
        return Span(
            self.filename,
            self.position_at(start_offset),
            self.position_at(end_offset),
        )

    def line_text(self, line):
        """The text of a 1-based line, without its newline."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]
