"""Hand-written lexer for the ECL language (C subset + ECL keywords).

The lexer operates on already-preprocessed text (see
:mod:`repro.lang.preprocessor`) and produces a list of :class:`Token`
records ending in a single EOF token.  It understands:

* identifiers and keywords (C + ECL; see :mod:`repro.lang.tokens`),
* decimal, octal and hexadecimal integer literals with ``u``/``l`` suffixes,
* character literals with the usual C escapes,
* string literals,
* all C punctuators used by the supported subset,
* ``//`` and ``/* ... */`` comments and whitespace (skipped).

The paper's figures use a typographic tilde (``˜``); the lexer accepts it as
``~`` so the listings can be compiled verbatim.
"""

from __future__ import annotations

from ..errors import LexError
from .source import SourceBuffer
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}

#: Unicode characters normalized before lexing (the paper's PDF glyphs).
_NORMALIZE = {"˜": "~", "∼": "~", "‘": "'", "’": "'"}


class Lexer:
    """Tokenizes one source buffer."""

    def __init__(self, text, filename="<string>"):
        for src, dst in _NORMALIZE.items():
            text = text.replace(src, dst)
        self.buffer = SourceBuffer(text, filename)
        self.text = text
        self.pos = 0

    def tokenize(self):
        """Return the full token list, ending with one EOF token."""
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Internals

    def _error(self, message, start):
        raise LexError(message, self.buffer.span(start, self.pos))

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _skip_trivia(self):
        """Skip whitespace and comments; error on unterminated comments."""
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n\f\v":
                self.pos += 1
            elif char == "/" and self._peek(1) == "/":
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end < 0 else end
            elif char == "/" and self._peek(1) == "*":
                start = self.pos
                end = self.text.find("*/", self.pos + 2)
                if end < 0:
                    self.pos = len(self.text)
                    self._error("unterminated block comment", start)
                self.pos = end + 2
            else:
                return

    def _next_token(self):
        self._skip_trivia()
        start = self.pos
        if self.pos >= len(self.text):
            span = self.buffer.span(start, start)
            return Token(TokenKind.EOF, None, span)
        char = self.text[self.pos]
        if char in _IDENT_START:
            return self._lex_ident(start)
        if char in _DIGITS:
            return self._lex_number(start)
        if char == "'":
            return self._lex_char(start)
        if char == '"':
            return self._lex_string(start)
        return self._lex_punct(start)

    def _lex_ident(self, start):
        while self._peek() in _IDENT_CONT and self._peek() != "":
            self.pos += 1
        text = self.text[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, self.buffer.span(start, self.pos), text)

    def _lex_number(self, start):
        text = self.text
        if text[self.pos] == "0" and self._peek(1) in ("x", "X"):
            self.pos += 2
            digit_start = self.pos
            while self._peek() in "0123456789abcdefABCDEF" and self._peek() != "":
                self.pos += 1
            if self.pos == digit_start:
                self._error("hexadecimal literal with no digits", start)
            value = int(text[digit_start:self.pos], 16)
        elif text[self.pos] == "0" and self._peek(1) in _DIGITS:
            self.pos += 1
            digit_start = self.pos
            while self._peek() != "" and self._peek() in "01234567":
                self.pos += 1
            if self._peek() != "" and self._peek() in "89":
                self._error("invalid digit in octal literal", start)
            value = int(text[digit_start:self.pos], 8)
        else:
            while self._peek() in _DIGITS and self._peek() != "":
                self.pos += 1
            if self._peek() == ".":
                self._error("floating-point literals are not supported", start)
            value = int(text[start:self.pos])
        # Integer suffixes are accepted and ignored (sizes come from types).
        while self._peek() in "uUlL" and self._peek() != "":
            self.pos += 1
        spelling = text[start:self.pos]
        return Token(
            TokenKind.INT_LITERAL, value, self.buffer.span(start, self.pos), spelling
        )

    def _read_escape(self, start):
        """Consume one (possibly escaped) character, return its value."""
        char = self._peek()
        if char == "":
            self._error("unterminated literal", start)
        if char != "\\":
            self.pos += 1
            return char
        self.pos += 1
        escape = self._peek()
        if escape == "":
            self._error("unterminated escape sequence", start)
        if escape == "x":
            self.pos += 1
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF" and self._peek() != "":
                digits += self._peek()
                self.pos += 1
            if not digits:
                self._error("\\x escape with no digits", start)
            return chr(int(digits, 16) & 0xFF)
        if escape in _ESCAPES:
            self.pos += 1
            return _ESCAPES[escape]
        self._error("unknown escape sequence '\\%s'" % escape, start)

    def _lex_char(self, start):
        self.pos += 1  # opening quote
        value = self._read_escape(start)
        if self._peek() != "'":
            self._error("unterminated character literal", start)
        self.pos += 1
        return Token(
            TokenKind.CHAR_LITERAL,
            ord(value),
            self.buffer.span(start, self.pos),
            self.text[start:self.pos],
        )

    def _lex_string(self, start):
        self.pos += 1  # opening quote
        chars = []
        while True:
            char = self._peek()
            if char == "" or char == "\n":
                self._error("unterminated string literal", start)
            if char == '"':
                self.pos += 1
                break
            chars.append(self._read_escape(start))
        return Token(
            TokenKind.STRING_LITERAL,
            "".join(chars),
            self.buffer.span(start, self.pos),
            self.text[start:self.pos],
        )

    def _lex_punct(self, start):
        for punct in PUNCTUATORS:
            if self.text.startswith(punct, self.pos):
                self.pos += len(punct)
                return Token(
                    TokenKind.PUNCT, punct, self.buffer.span(start, self.pos), punct
                )
        char = self.text[self.pos]
        self.pos += 1
        self._error("unexpected character %r" % char, start)


def tokenize(text, filename="<string>"):
    """Convenience wrapper: lex ``text`` into a token list."""
    return Lexer(text, filename).tokenize()
