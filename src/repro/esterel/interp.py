"""Concrete execution of kernel programs: one instant at a time.

This is the reference semantics of the reproduction (DESIGN.md §7): the
EFSM path is cross-checked against it.  A reaction resolves signal
presence by iterating to a fixed point of *presence assumptions*:

1. run the instant assuming every not-yet-justified non-input signal is
   absent, recording every assumption actually consulted and every
   emission performed;
2. if some consulted assumption disagrees with what was emitted, restore
   the memory snapshot, fold the observed emissions into the assumption
   table, and re-run;
3. a run whose assumptions all match its emissions is the reaction.

Programs with no self-consistent assignment raise
:class:`~repro.errors.CausalityError` (the iteration either stops making
progress or exceeds its round budget).  Signal *values* follow program
order: a reader that runs before the writer in the final round sees the
previous instant's value (DESIGN.md §4, the paper's shared-signal rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from ..errors import CausalityError, EvalError
from ..runtime.ceval import Evaluator
from . import kernel as k
from .react import ReactContext, react


@dataclass
class ReactionResult:
    """Outcome of one instant."""

    code: int                  # 0 terminated, 1 paused (k+2 cannot escape)
    residue: k.KStmt
    emitted: Set[str] = field(default_factory=set)
    delta_requested: bool = False  # an await() pause wants a re-trigger
    rounds: int = 1            # fixed-point iterations used

    @property
    def terminated(self):
        return self.code == 0


class ConcreteContext(ReactContext):
    """ReactContext that executes data code for real."""

    def __init__(self, evaluator, signals, belief):
        self.evaluator = evaluator
        self.signals = signals
        self.belief = belief       # name -> assumed presence (non-inputs)
        self.assumed = {}          # assumptions actually consulted
        self.emitted = set()
        self.delta = False

    def signal_status(self, name):
        slot = self.signals.get(name)
        if slot is None:
            raise EvalError("presence test of unknown signal %r" % name)
        if slot.direction == "input":
            return slot.present
        if name in self.emitted:
            return True  # already justified this round
        value = self.belief.get(name, False)
        self.assumed[name] = value
        return value

    def data_test(self, expr):
        return self.evaluator.eval_bool(expr)

    def emit(self, name, value_expr):
        slot = self.signals.get(name)
        if slot is None:
            raise EvalError("emission of unknown signal %r" % name)
        if slot.direction == "input":
            raise EvalError("cannot emit input signal %r" % name)
        value = None
        if value_expr is not None:
            if slot.is_pure:
                raise EvalError(
                    "emit_v on pure signal %r (it carries no value)" % name)
            value = self.evaluator.eval(value_expr)
        elif not slot.is_pure:
            raise EvalError(
                "emit on valued signal %r requires emit_v" % name)
        slot.emit(value)
        self.emitted.add(name)

    def action(self, stmt):
        self.evaluator.exec_stmt(stmt)

    def delta_pause(self):
        self.delta = True


def run_instant(stmt, signals, env, max_rounds=None):
    """Execute one reaction of ``stmt``.

    ``signals`` is a :class:`~repro.runtime.signals.SignalTable` whose
    input slots have already been set for this instant; ``env`` is the
    module's C environment.  Returns a :class:`ReactionResult`; the
    signal table afterwards reflects the committed emissions.
    """
    evaluator = Evaluator(env)
    snapshot = env.space.snapshot()
    non_inputs = [s for s in signals if s.direction != "input"]
    if max_rounds is None:
        max_rounds = 2 * len(non_inputs) + 4
    belief = {}
    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise CausalityError(
                "no consistent signal assignment after %d rounds "
                "(signals: %s)" % (rounds - 1,
                                   ", ".join(sorted(belief)) or "none"))
        env.space.restore(snapshot)
        for slot in non_inputs:
            slot.new_instant()
        ctx = ConcreteContext(evaluator, signals, belief)
        code, residue = react(stmt, ctx)
        consistent = all(
            assumed == (name in ctx.emitted)
            for name, assumed in ctx.assumed.items()
        )
        if consistent:
            return ReactionResult(
                code=code,
                residue=residue if code == 1 else k.NOTHING,
                emitted=ctx.emitted,
                delta_requested=ctx.delta,
                rounds=rounds,
            )
        updated = dict(belief)
        for name in ctx.assumed:
            updated[name] = name in ctx.emitted
        if updated == belief:
            raise CausalityError(
                "signal feedback has no fixed point (program is "
                "non-constructive): %s"
                % ", ".join(sorted(n for n, v in ctx.assumed.items()
                                   if v != (n in ctx.emitted))))
        belief = updated


class KernelRunner:
    """Drives a kernel statement over many instants (testing aid and the
    engine behind interpreter-backed reactors)."""

    def __init__(self, stmt, signals, env):
        self.initial = stmt
        self.residue = stmt
        self.signals = signals
        self.env = env
        self.terminated = False
        self.instant_count = 0

    def step(self, inputs=None, values=None):
        """Run one instant.

        ``inputs`` is an iterable of input-signal names present this
        instant; ``values`` maps valued input names to the value carried.
        Returns the :class:`ReactionResult`.
        """
        if self.terminated:
            return ReactionResult(code=0, residue=k.NOTHING)
        self.signals.new_instant()
        for name in inputs or ():
            slot = self.signals.get(name)
            if slot is None or slot.direction != "input":
                raise EvalError("unknown input signal %r" % name)
            slot.set_input()
        for name, value in (values or {}).items():
            slot = self.signals.get(name)
            if slot is None or slot.direction != "input":
                raise EvalError("unknown input signal %r" % name)
            slot.set_input(value)
        result = run_instant(self.residue, self.signals, self.env)
        self.instant_count += 1
        if result.terminated:
            self.terminated = True
            self.residue = k.NOTHING
        else:
            self.residue = result.residue
        return result

    def reset(self):
        self.residue = self.initial
        self.terminated = False
        self.instant_count = 0
