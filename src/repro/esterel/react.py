"""Structural operational semantics of the Esterel kernel.

:func:`react` runs one statement for one instant against a
:class:`ReactContext` and returns ``(completion_code, residue)``.  The same
function drives both execution engines:

* the concrete interpreter (:mod:`repro.esterel.interp`) supplies a
  context that executes data actions against real memory and resolves
  presence via the per-instant fixed point;
* the EFSM builder (:mod:`repro.efsm.build`) supplies a context that
  *records* actions and forks on undetermined tests.

Completion codes: 0 terminate, 1 pause, k+2 exit of trap ``k`` levels up.
"""

from __future__ import annotations

from ..errors import InstantaneousLoopError
from ..lang import ast
from . import kernel as k


class ReactContext:
    """What the semantics needs from an execution engine."""

    def signal_status(self, name):
        """Presence of ``name`` in the current instant."""
        raise NotImplementedError

    def data_test(self, expr):
        """Truth of a C condition in the current micro-state."""
        raise NotImplementedError

    def emit(self, name, value_expr):
        """Perform/record an emission."""
        raise NotImplementedError

    def action(self, stmt):
        """Perform/record an atomic data statement."""
        raise NotImplementedError

    def delta_pause(self):
        """Note that a ``Pause(delta=True)`` was reached (paper fn. 3)."""


def eval_sig_expr(ctx, sig_expr):
    """Evaluate a presence expression through the context."""
    if isinstance(sig_expr, ast.SigRef):
        return ctx.signal_status(sig_expr.name)
    if isinstance(sig_expr, ast.SigNot):
        return not eval_sig_expr(ctx, sig_expr.operand)
    if isinstance(sig_expr, ast.SigAnd):
        # No short-circuit: both sides are resolved so that symbolic
        # exploration enumerates the same decisions on every path.
        left = eval_sig_expr(ctx, sig_expr.left)
        right = eval_sig_expr(ctx, sig_expr.right)
        return left and right
    if isinstance(sig_expr, ast.SigOr):
        left = eval_sig_expr(ctx, sig_expr.left)
        right = eval_sig_expr(ctx, sig_expr.right)
        return left or right
    raise TypeError("unknown signal expression %r" % (sig_expr,))


def react(stmt, ctx):
    """Run ``stmt`` for one instant; return ``(code, residue)``.

    The residue is only meaningful when ``code == 1``; by convention it is
    :data:`~repro.esterel.kernel.NOTHING` otherwise.
    """
    if isinstance(stmt, k.Nothing):
        return 0, k.NOTHING

    if isinstance(stmt, k.Pause):
        if stmt.delta:
            ctx.delta_pause()
        return 1, k.NOTHING

    if isinstance(stmt, k.Halt):
        return 1, stmt

    if isinstance(stmt, k.Emit):
        ctx.emit(stmt.signal, stmt.value)
        return 0, k.NOTHING

    if isinstance(stmt, k.Action):
        ctx.action(stmt.stmt)
        return 0, k.NOTHING

    if isinstance(stmt, k.Exit):
        return stmt.depth + 2, k.NOTHING

    if isinstance(stmt, k.IfData):
        branch = stmt.then if ctx.data_test(stmt.cond) else stmt.otherwise
        return react(branch, ctx)

    if isinstance(stmt, k.Present):
        branch = stmt.then if eval_sig_expr(ctx, stmt.cond) else stmt.otherwise
        return react(branch, ctx)

    if isinstance(stmt, k.Seq):
        return _react_seq(stmt.stmts, ctx)

    if isinstance(stmt, k.Loop):
        return _react_loop(stmt, stmt.body, ctx, started=False)

    if isinstance(stmt, k.Await):
        # Non-immediate: the first instant always pauses.
        return 1, k.AwaitActive(stmt.cond)

    if isinstance(stmt, k.AwaitActive):
        if eval_sig_expr(ctx, stmt.cond):
            return 0, k.NOTHING
        return 1, stmt

    if isinstance(stmt, k.Par):
        return _react_par([(b, True) for b in stmt.branches], ctx)

    if isinstance(stmt, k.ParActive):
        return _react_par(
            [(b, False) for b in stmt.branches], ctx)

    if isinstance(stmt, k.Trap):
        return _react_trap(stmt.body, ctx)

    if isinstance(stmt, k.Abort):
        # First instant: the body runs unconditionally.
        return _arm_abort(react(stmt.body, ctx), stmt.cond, stmt.handler,
                          stmt.weak)

    if isinstance(stmt, k.AbortActive):
        if not stmt.weak and eval_sig_expr(ctx, stmt.cond):
            # Strong abort: the body does not run this instant; the
            # handler (if any) runs immediately.
            handler = stmt.handler if stmt.handler is not None else k.NOTHING
            return react(handler, ctx)
        code, residue = react(stmt.body, ctx)
        if stmt.weak and eval_sig_expr(ctx, stmt.cond):
            # Weak abort: the body ran for the last time this instant.
            if code == 1:
                handler = stmt.handler if stmt.handler is not None \
                    else k.NOTHING
                return react(handler, ctx)
            return code, k.NOTHING
        return _arm_abort((code, residue), stmt.cond, stmt.handler, stmt.weak)

    if isinstance(stmt, k.Suspend):
        code, residue = react(stmt.body, ctx)
        if code == 1:
            return 1, k.SuspendActive(residue, stmt.cond)
        return code, k.NOTHING

    if isinstance(stmt, k.SuspendActive):
        if eval_sig_expr(ctx, stmt.cond):
            return 1, stmt  # frozen this instant
        code, residue = react(stmt.body, ctx)
        if code == 1:
            return 1, k.SuspendActive(residue, stmt.cond)
        return code, k.NOTHING

    raise TypeError("unknown kernel statement %r" % (stmt,))


def _arm_abort(result, cond, handler, weak):
    code, residue = result
    if code == 1:
        return 1, k.AbortActive(residue, cond, handler, weak)
    return code, k.NOTHING


def _react_seq(stmts, ctx):
    for index, stmt in enumerate(stmts):
        code, residue = react(stmt, ctx)
        if code == 0:
            continue
        if code == 1:
            rest = stmts[index + 1:]
            return 1, k.seq(residue, *rest)
        return code, k.NOTHING
    return 0, k.NOTHING


def _react_loop(loop, first, ctx, started):
    """Run a loop: ``first`` is the body residue (on resume) or the body
    itself (on start).  A body that terminates twice without consuming an
    instant is an instantaneous loop."""
    current = first
    restarted = False
    while True:
        code, residue = react(current, ctx)
        if code == 1:
            return 1, k.seq(residue, loop)
        if code != 0:
            return code, k.NOTHING
        if restarted:
            raise InstantaneousLoopError(
                "loop body terminates without passing an instant boundary; "
                "the Esterel compiler rejects such loops (extract the loop "
                "as a data function or add await())")
        restarted = True
        current = loop.body


def _react_par(branches, ctx):
    """Run parallel branches left to right; combine with max-code."""
    codes = []
    residues = []
    for branch, _fresh in branches:
        if branch is None:  # already terminated in an earlier instant
            codes.append(0)
            residues.append(None)
            continue
        code, residue = react(branch, ctx)
        codes.append(code)
        residues.append(residue if code == 1 else None)
    top = max(codes) if codes else 0
    if top == 1:
        return 1, k.ParActive(tuple(residues))
    # 0: all done; >=2: an exit kills every sibling at the instant's end.
    return top, k.NOTHING


def _react_trap(body, ctx):
    code, residue = react(body, ctx)
    if code == 1:
        return 1, k.Trap(residue)
    if code == 0 or code == 2:
        return 0, k.NOTHING
    return code - 1, k.NOTHING
