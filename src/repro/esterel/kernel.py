"""The Esterel kernel intermediate representation.

The ECL translator (:mod:`repro.ecl.translate`) lowers a module body into
this small statement algebra; the interpreter
(:mod:`repro.esterel.interp`) and the EFSM builder
(:mod:`repro.efsm.build`) both run it, sharing one structural-operational
semantics (:mod:`repro.esterel.react`).

Statements are frozen, hashable dataclasses.  *Residues* — the
continuation of a statement across an instant boundary — are expressed in
the same algebra (plus three ``*Active`` wrappers), so an EFSM control
state is simply a canonical kernel term.

Completion codes follow Berry's encoding:

====  ==========================================
0     terminated
1     paused (an instant boundary was reached)
k+2   ``exit`` of the trap ``k`` levels up
====  ==========================================

Design notes (deviations documented in DESIGN.md §4):

* ``Await``/``Abort``/``Suspend`` conditions are *signal expressions*
  (:class:`repro.lang.ast.SigExpr`) over presence bits.
* Local signals are hoisted and alpha-renamed by the translator, so the
  kernel has no signal-declaration statement (and hence no schizophrenic
  reincarnation; the paper's examples declare signals at module top).
* ``Halt`` is first class rather than ``loop pause end`` so the runtime
  can tell "sleep forever" from the ``await()`` delta cycle, which must
  re-trigger the module (paper, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..lang import ast


@dataclass(frozen=True)
class KStmt:
    """Base class of kernel statements."""

    def is_residue(self):
        """True for mid-execution wrappers (never produced by translation)."""
        return False


@dataclass(frozen=True)
class Nothing(KStmt):
    """No-op; terminates instantly."""


#: Shared singleton for the common case.
NOTHING = Nothing()


@dataclass(frozen=True)
class Pause(KStmt):
    """End the current instant; resume at the next one.

    ``delta=True`` marks pauses produced by ECL's ``await()`` — the module
    must be re-triggered by the scheduler even with no input event.
    """

    delta: bool = False


@dataclass(frozen=True)
class Halt(KStmt):
    """Stop forever (until pre-empted from outside)."""


@dataclass(frozen=True)
class Emit(KStmt):
    """Emit ``signal``; ``value`` (an AST expression) is evaluated at emit
    time for ``emit_v``."""

    signal: str = ""
    value: Optional[ast.Expr] = None


@dataclass(frozen=True)
class Action(KStmt):
    """An atomic data statement (assignment, data-function call, ...),
    executed by the C evaluator.  Zero time."""

    stmt: ast.Stmt = None


@dataclass(frozen=True)
class IfData(KStmt):
    """Branch on a C expression over variables/signal values."""

    cond: ast.Expr = None
    then: KStmt = NOTHING
    otherwise: KStmt = NOTHING


@dataclass(frozen=True)
class Present(KStmt):
    """Branch on a signal presence expression."""

    cond: ast.SigExpr = None
    then: KStmt = NOTHING
    otherwise: KStmt = NOTHING


@dataclass(frozen=True)
class Seq(KStmt):
    stmts: Tuple[KStmt, ...] = ()


@dataclass(frozen=True)
class Loop(KStmt):
    body: KStmt = NOTHING


@dataclass(frozen=True)
class Par(KStmt):
    branches: Tuple[KStmt, ...] = ()


@dataclass(frozen=True)
class Trap(KStmt):
    """Catch ``Exit(0)`` thrown inside ``body`` (de Bruijn indexing)."""

    body: KStmt = NOTHING


@dataclass(frozen=True)
class Exit(KStmt):
    """Exit the trap ``depth`` levels up (0 = innermost)."""

    depth: int = 0


@dataclass(frozen=True)
class Await(KStmt):
    """Wait (non-immediately) for a signal expression (paper, stmt 2)."""

    cond: ast.SigExpr = None


@dataclass(frozen=True)
class Abort(KStmt):
    """``do body abort(cond) [handle handler]``; non-immediate, i.e. the
    condition is tested from the second instant on (paper, stmt 5)."""

    body: KStmt = NOTHING
    cond: ast.SigExpr = None
    handler: Optional[KStmt] = None
    weak: bool = False


@dataclass(frozen=True)
class Suspend(KStmt):
    """``do body suspend(cond)``; freezes the body in instants where the
    condition holds (after the first instant)."""

    body: KStmt = NOTHING
    cond: ast.SigExpr = None


# ----------------------------------------------------------------------
# Residue wrappers: a started statement carried across an instant.


@dataclass(frozen=True)
class AwaitActive(KStmt):
    """An Await past its first instant boundary: now watching."""

    cond: ast.SigExpr = None

    def is_residue(self):
        return True


@dataclass(frozen=True)
class AbortActive(KStmt):
    """A started Abort: the condition is live from now on."""

    body: KStmt = NOTHING
    cond: ast.SigExpr = None
    handler: Optional[KStmt] = None
    weak: bool = False

    def is_residue(self):
        return True


@dataclass(frozen=True)
class SuspendActive(KStmt):
    """A started Suspend: the condition is live from now on."""

    body: KStmt = NOTHING
    cond: ast.SigExpr = None

    def is_residue(self):
        return True


@dataclass(frozen=True)
class ParActive(KStmt):
    """A started Par; terminated branches are replaced by ``None``."""

    branches: Tuple[Optional[KStmt], ...] = ()

    def is_residue(self):
        return True


# ----------------------------------------------------------------------
# Constructors that keep terms canonical


def seq(*stmts):
    """Build a flattened Seq, dropping Nothing and collapsing singletons."""
    flat = []
    for stmt in stmts:
        if isinstance(stmt, Seq):
            flat.extend(stmt.stmts)
        elif isinstance(stmt, Nothing):
            continue
        elif stmt is not None:
            flat.append(stmt)
    if not flat:
        return NOTHING
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def par(*branches):
    flat = [b for b in branches if b is not None]
    if not flat:
        return NOTHING
    if len(flat) == 1:
        return flat[0]
    return Par(tuple(flat))


# ----------------------------------------------------------------------
# Structural queries


def may_pause(stmt):
    """Can ``stmt`` consume an instant on some path?  Used to reject
    obviously-instantaneous reactive loops at translation time."""
    if isinstance(stmt, (Pause, Halt, Await, AwaitActive)):
        return True
    if isinstance(stmt, (Nothing, Emit, Action, Exit)):
        return False
    if isinstance(stmt, (IfData, Present)):
        return may_pause(stmt.then) or may_pause(stmt.otherwise)
    if isinstance(stmt, Seq):
        return any(may_pause(s) for s in stmt.stmts)
    if isinstance(stmt, Loop):
        return may_pause(stmt.body)
    if isinstance(stmt, (Par, ParActive)):
        branches = getattr(stmt, "branches")
        return any(may_pause(b) for b in branches if b is not None)
    if isinstance(stmt, Trap):
        return may_pause(stmt.body)
    if isinstance(stmt, (Abort, AbortActive, Suspend, SuspendActive)):
        result = may_pause(stmt.body)
        handler = getattr(stmt, "handler", None)
        if handler is not None:
            result = result or may_pause(handler)
        return result
    raise TypeError("unknown kernel statement %r" % (stmt,))


def must_terminate_instantly(stmt):
    """Does every path through ``stmt`` terminate without pausing or
    exiting?  (Conservative; used for instantaneous-loop detection.)"""
    if isinstance(stmt, (Nothing, Emit, Action)):
        return True
    if isinstance(stmt, (Pause, Halt, Await, AwaitActive, Exit)):
        return False
    if isinstance(stmt, (IfData, Present)):
        return must_terminate_instantly(stmt.then) and \
            must_terminate_instantly(stmt.otherwise)
    if isinstance(stmt, Seq):
        return all(must_terminate_instantly(s) for s in stmt.stmts)
    if isinstance(stmt, Loop):
        return False  # loops never terminate by themselves
    if isinstance(stmt, (Par, ParActive)):
        return all(must_terminate_instantly(b) for b in stmt.branches
                   if b is not None)
    if isinstance(stmt, Trap):
        return must_terminate_instantly(stmt.body)
    if isinstance(stmt, (Abort, AbortActive, Suspend, SuspendActive)):
        return must_terminate_instantly(stmt.body)
    raise TypeError("unknown kernel statement %r" % (stmt,))


def emitted_signals(stmt):
    """Signal names ``stmt`` may emit."""
    names = set()
    _visit_kernel(stmt, lambda node: names.add(node.signal)
                  if isinstance(node, Emit) else None)
    return names


def tested_signals(stmt):
    """Signal names whose presence ``stmt`` may test."""
    names = set()

    def collect(node):
        cond = getattr(node, "cond", None)
        if isinstance(cond, ast.SigExpr):
            names.update(cond.signal_names())

    _visit_kernel(stmt, collect)
    return names


def _visit_kernel(stmt, callback):
    if stmt is None:
        return
    callback(stmt)
    for attr in ("then", "otherwise", "body", "handler"):
        child = getattr(stmt, attr, None)
        if isinstance(child, KStmt):
            _visit_kernel(child, callback)
    for attr in ("stmts", "branches"):
        children = getattr(stmt, attr, None)
        if children:
            for child in children:
                if isinstance(child, KStmt):
                    _visit_kernel(child, callback)


def schedule_branches(branches):
    """Order parallel branches so emitters run before testers.

    This is the causality-based scheduling the Esterel compiler performs:
    if branch ``j`` emits a signal branch ``i`` tests, ``j`` should run
    first within the instant, so that by the time ``i``'s test executes
    the signal's status is already justified.  A stable topological order
    is used (original order is kept among unconstrained branches);
    genuine cycles are left in source order and handled by the
    assumption/fixed-point machinery downstream.
    """
    n = len(branches)
    emits = [emitted_signals(b) for b in branches]
    tests = [tested_signals(b) for b in branches]
    # edge j -> i  when j emits something i tests (j must precede i)
    predecessors = [set() for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i != j and emits[j] & tests[i]:
                predecessors[i].add(j)
    order = []
    placed = set()
    while len(order) < n:
        progress = False
        for i in range(n):
            if i in placed:
                continue
            if predecessors[i] <= placed:
                order.append(i)
                placed.add(i)
                progress = True
        if not progress:
            # Causality cycle between branches: keep source order for the
            # remainder; the downstream validity check decides.
            for i in range(n):
                if i not in placed:
                    order.append(i)
                    placed.add(i)
    return tuple(branches[i] for i in order)


def signals_used(stmt):
    """All signal names a kernel term emits or tests."""
    names = set()

    def visit(node):
        if node is None:
            return
        if isinstance(node, Emit):
            names.add(node.signal)
        for attr in ("cond",):
            cond = getattr(node, attr, None)
            if isinstance(cond, ast.SigExpr):
                names.update(cond.signal_names())
        for attr in ("then", "otherwise", "body", "handler"):
            child = getattr(node, attr, None)
            if isinstance(child, KStmt):
                visit(child)
        for attr in ("stmts", "branches"):
            children = getattr(node, attr, None)
            if children:
                for child in children:
                    if isinstance(child, KStmt):
                        visit(child)

    visit(stmt)
    return names
