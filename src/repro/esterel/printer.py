"""Render kernel programs as Esterel source text.

The ECL compiler's phase 1 writes "the result out in the form of C code,
C header and Esterel files" (paper, Compilation).  This module produces
the Esterel file: kernel statements in Esterel v5 concrete syntax, with
data actions appearing as host-procedure calls (the glue-code convention
the paper describes for non-scalar data access).
"""

from __future__ import annotations

from ..errors import CodegenError
from ..lang import ast
from ..lang.printer import Printer as CPrinter
from . import kernel as k

_INDENT = "  "


class EsterelPrinter:
    """Pretty-prints kernel terms as Esterel source."""

    def __init__(self):
        self._c = CPrinter()
        self._trap_depth = 0

    # ------------------------------------------------------------------

    def module_text(self, name, params, body, local_signals=()):
        """Full Esterel module: header, interface, body."""
        lines = ["module %s:" % name]
        for param in params:
            direction = "input" if param.direction == "input" else "output"
            if param.type is None or getattr(param.type, "size", 1) == 0:
                lines.append("%s %s;" % (direction, param.name))
            else:
                lines.append("%s %s : integer;" % (direction, param.name))
        body_lines = self.stmt_lines(body, 0)
        if local_signals:
            names = ", ".join(n for n, _t in local_signals)
            lines.append("signal %s in" % names)
            lines.extend(_INDENT + line for line in body_lines)
            lines.append("end signal")
        else:
            lines.extend(body_lines)
        lines.append("end module")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------

    def sig_text(self, sig_expr):
        if isinstance(sig_expr, ast.SigRef):
            return sig_expr.name
        if isinstance(sig_expr, ast.SigNot):
            return "not %s" % self._sig_atom(sig_expr.operand)
        if isinstance(sig_expr, ast.SigAnd):
            return "%s and %s" % (self._sig_atom(sig_expr.left),
                                  self._sig_atom(sig_expr.right))
        if isinstance(sig_expr, ast.SigOr):
            return "%s or %s" % (self._sig_atom(sig_expr.left),
                                 self._sig_atom(sig_expr.right))
        raise CodegenError("cannot print signal expression %r" % (sig_expr,))

    def _sig_atom(self, sig_expr):
        text = self.sig_text(sig_expr)
        if isinstance(sig_expr, (ast.SigAnd, ast.SigOr)):
            return "[%s]" % text
        return text

    # ------------------------------------------------------------------

    def stmt_lines(self, stmt, indent):
        pad = _INDENT * indent
        if isinstance(stmt, k.Nothing):
            return [pad + "nothing"]
        if isinstance(stmt, k.Pause):
            return [pad + "pause"]
        if isinstance(stmt, k.Halt):
            return [pad + "halt"]
        if isinstance(stmt, k.Emit):
            if stmt.value is None:
                return [pad + "emit %s" % stmt.signal]
            return [pad + "emit %s(%s)" % (stmt.signal,
                                           self._c.expr(stmt.value))]
        if isinstance(stmt, k.Action):
            # Data actions become host procedure calls in the Esterel file;
            # the C text is kept as a comment for readability.
            text = " ".join(
                line.strip() for line in self._c.stmt(stmt.stmt))
            return [pad + "call ecl_action()(); %% %s" % text]
        if isinstance(stmt, k.IfData):
            lines = [pad + "if ecl_test()(%% %s %%) then"
                     % self._c.expr(stmt.cond)]
            lines.extend(self.stmt_lines(stmt.then, indent + 1))
            if not isinstance(stmt.otherwise, k.Nothing):
                lines.append(pad + "else")
                lines.extend(self.stmt_lines(stmt.otherwise, indent + 1))
            lines.append(pad + "end if")
            return lines
        if isinstance(stmt, k.Present):
            lines = [pad + "present [%s] then" % self.sig_text(stmt.cond)]
            lines.extend(self.stmt_lines(stmt.then, indent + 1))
            if not isinstance(stmt.otherwise, k.Nothing):
                lines.append(pad + "else")
                lines.extend(self.stmt_lines(stmt.otherwise, indent + 1))
            lines.append(pad + "end present")
            return lines
        if isinstance(stmt, k.Seq):
            lines = []
            for index, child in enumerate(stmt.stmts):
                child_lines = self.stmt_lines(child, indent)
                if index < len(stmt.stmts) - 1:
                    child_lines[-1] += ";"
                lines.extend(child_lines)
            return lines
        if isinstance(stmt, k.Loop):
            lines = [pad + "loop"]
            lines.extend(self.stmt_lines(stmt.body, indent + 1))
            lines.append(pad + "end loop")
            return lines
        if isinstance(stmt, k.Par):
            lines = [pad + "["]
            for index, branch in enumerate(stmt.branches):
                lines.extend(self.stmt_lines(branch, indent + 1))
                if index < len(stmt.branches) - 1:
                    lines.append(pad + "||")
            lines.append(pad + "]")
            return lines
        if isinstance(stmt, k.Trap):
            label = "T%d" % self._trap_depth
            self._trap_depth += 1
            lines = [pad + "trap %s in" % label]
            lines.extend(self.stmt_lines(stmt.body, indent + 1))
            lines.append(pad + "end trap")
            self._trap_depth -= 1
            return lines
        if isinstance(stmt, k.Exit):
            label = "T%d" % (self._trap_depth - 1 - stmt.depth)
            return [pad + "exit %s" % label]
        if isinstance(stmt, k.Await):
            return [pad + "await [%s]" % self.sig_text(stmt.cond)]
        if isinstance(stmt, k.Abort):
            keyword = "weak abort" if stmt.weak else "abort"
            lines = [pad + keyword]
            lines.extend(self.stmt_lines(stmt.body, indent + 1))
            lines.append(pad + "when [%s]" % self.sig_text(stmt.cond))
            if stmt.handler is not None:
                lines[-1] = pad + "when case [%s] do" % self.sig_text(stmt.cond)
                lines.extend(self.stmt_lines(stmt.handler, indent + 1))
                lines.append(pad + "end abort")
            return lines
        if isinstance(stmt, k.Suspend):
            lines = [pad + "suspend"]
            lines.extend(self.stmt_lines(stmt.body, indent + 1))
            lines.append(pad + "when [%s]" % self.sig_text(stmt.cond))
            return lines
        raise CodegenError(
            "cannot print kernel statement %r (residues are not source "
            "syntax)" % (stmt,))


def to_esterel(stmt):
    """Render a kernel statement as Esterel text."""
    return "\n".join(EsterelPrinter().stmt_lines(stmt, 0))
