"""The Esterel substrate: kernel IR, semantics, interpreter, printer.

This package stands in for the CMA Esterel compiler the paper builds on
(DESIGN.md, substitution S4): the ECL translator emits kernel terms, the
interpreter executes them with the synchronous fixed-point semantics, and
:mod:`repro.efsm` compiles them to extended finite state machines.
"""

from . import kernel
from .interp import KernelRunner, ReactionResult, run_instant
from .printer import EsterelPrinter, to_esterel
from .react import ReactContext, eval_sig_expr, react

__all__ = [
    "kernel",
    "KernelRunner",
    "ReactionResult",
    "run_instant",
    "EsterelPrinter",
    "to_esterel",
    "ReactContext",
    "eval_sig_expr",
    "react",
]
