"""Shared helpers for the hardware back-ends (VHDL / Verilog).

The paper restricts hardware synthesis: "If the data-dominated C part is
empty, then the complete ECL specification can be implemented either in
hardware or in software."  The RTL back-ends therefore accept only
modules with no extracted data functions, scalar-typed signals and
variables, and expressions in the synthesizable C fragment (integer
arithmetic/logic, no pointers, no calls).  Anything else raises
:class:`~repro.errors.CodegenError` citing the rule.
"""

from __future__ import annotations

from ..errors import CodegenError
from ..lang import ast
from ..lang.types import BoolType, IntType, PureType


def check_synthesizable(module):
    """Enforce the paper's hardware-implementability condition."""
    if module.data_blocks:
        raise CodegenError(
            "module %s has %d extracted data function(s); the paper allows "
            "hardware only when 'the data-dominated C part is empty'"
            % (module.name, len(module.data_blocks)))
    for param in module.params:
        _check_type(param.type, "signal %s" % param.name, module.name)
    for name, sig_type in module.local_signals:
        _check_type(sig_type, "signal %s" % name, module.name)
    for name, var_type in module.variables:
        _check_type(var_type, "variable %s" % name, module.name)


def _check_type(ctype, what, module_name):
    if isinstance(ctype, (PureType, BoolType, IntType)):
        return
    raise CodegenError(
        "module %s: %s has non-scalar type %s; hardware synthesis "
        "requires scalar signals and variables"
        % (module_name, what, ctype))


def bit_width(ctype):
    """RTL vector width for a scalar type."""
    if isinstance(ctype, PureType):
        return 0
    if isinstance(ctype, BoolType):
        return 1
    if isinstance(ctype, IntType):
        return 8 * ctype.size
    raise CodegenError("no RTL width for type %s" % ctype)


#: C binary operators with a direct RTL equivalent (per backend syntax).
SYNTHESIZABLE_BINOPS = frozenset(
    ["+", "-", "*", "&", "|", "^", "<<", ">>",
     "==", "!=", "<", ">", "<=", ">=", "&&", "||"])


def check_expr(expr, module_name):
    """Reject C constructs with no RTL translation."""
    for node in ast.walk(expr):
        if isinstance(node, (ast.Call, ast.Cast, ast.SizeofExpr,
                             ast.SizeofType, ast.StrLit, ast.Index,
                             ast.Member)):
            raise CodegenError(
                "module %s: expression uses %s, which has no hardware "
                "translation" % (module_name, type(node).__name__),
                getattr(node, "span", None))
        if isinstance(node, ast.Unary) and node.op in ("&", "*"):
            raise CodegenError(
                "module %s: pointers cannot be synthesized to hardware"
                % module_name, node.span)
        if isinstance(node, ast.Binary) and \
                node.op not in SYNTHESIZABLE_BINOPS:
            raise CodegenError(
                "module %s: operator %r is not synthesizable"
                % (module_name, node.op), node.span)
