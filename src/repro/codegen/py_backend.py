"""Executable back-end: run an EFSM directly in Python.

This is the software implementation the paper's phase 3 generates, minus
the C detour: each instant walks the current state's decision tree once —
no fixed-point iteration, no re-execution — which is exactly why the
paper claims compiled reactions are faster than hand-written event code
(and why :mod:`benchmarks.bench_reaction_speed` can measure it).
"""

from __future__ import annotations


from ..errors import EvalError
from ..efsm.machine import (
    DoAction,
    DoEmit,
    Leaf,
    TERMINATED,
    TestData,
    TestSignal,
)
from ..runtime.ceval import Env, Evaluator
from ..runtime.memory import AddressSpace
from ..runtime.reactor import ReactorOutput
from ..runtime.signals import SignalSlot, SignalTable


class EfsmReactor:
    """Drop-in alternative to :class:`repro.runtime.reactor.Reactor` that
    executes the compiled automaton instead of interpreting the kernel."""

    def __init__(self, efsm, counter=None, builtins=None):
        self.efsm = efsm
        module = efsm.module
        self.module = module
        self.space = AddressSpace(module.name)
        functions = dict(module.functions)
        if builtins:
            functions.update(builtins)
        self.signals = SignalTable()
        self.env = Env(space=self.space, functions=functions,
                       signal_resolver=self.signals.get, counter=counter)
        for param in module.params:
            self.signals.add(SignalSlot(param.name, param.type, self.space,
                                        param.direction))
        for name, sig_type in module.local_signals:
            self.signals.add(SignalSlot(name, sig_type, self.space, "local"))
        for name, var_type in module.variables:
            self.env.declare(name, var_type)
        self._evaluator = Evaluator(self.env)
        self.coverage = None
        self._cov_counts = None
        self._cov_base = None
        self.state = efsm.initial
        self.terminated = False
        self.instants = 0

    # ------------------------------------------------------------------

    def enable_coverage(self, coverage):
        """Attach a :class:`repro.verify.coverage.CoverageMap`: every
        instant marks the entry state, the taken reaction leaf and the
        emitted signals.  The leaf's occurrence-based transition id is
        computed during the walk: start from the state's base id and
        add the skipped ``then`` subtree's leaf count whenever an
        ``otherwise`` branch is taken."""
        self.coverage = coverage
        self._cov_counts = self.efsm.leaf_counts()
        self._cov_base = self.efsm.state_leaf_base()

    def react(self, inputs=None, values=None):
        """Run one instant through the decision tree."""
        if self.terminated:
            return ReactorOutput(terminated=True)
        present = set(inputs or ())
        values = dict(values or {})
        present.update(values)
        self.signals.new_instant()
        for name in present:
            value = values.get(name)
            slot = self.signals.require_input(name, self.module.name,
                                              value=value)
            slot.set_input(value)
        emitted = set()
        delta = False
        self.env.count("react")
        entry = self.state
        cov = self.coverage
        node = self.efsm.state(entry).reaction
        tid = self._cov_base[entry] if cov is not None else 0
        while not isinstance(node, Leaf):
            if isinstance(node, TestSignal):
                slot = self.signals[node.signal]
                if slot.present:
                    node = node.then
                else:
                    if cov is not None:
                        tid += self._cov_counts[id(node.then)]
                    node = node.otherwise
            elif isinstance(node, TestData):
                if self._evaluator.eval_bool(node.cond):
                    node = node.then
                else:
                    if cov is not None:
                        tid += self._cov_counts[id(node.then)]
                    node = node.otherwise
            elif isinstance(node, DoAction):
                self._evaluator.exec_stmt(node.stmt)
                node = node.next
            elif isinstance(node, DoEmit):
                value = None
                if node.value is not None:
                    value = self._evaluator.eval(node.value)
                self.signals[node.signal].emit(value)
                emitted.add(node.signal)
                node = node.next
            else:
                raise EvalError("corrupt reaction tree node %r" % (node,))
        delta = node.delta
        if cov is not None:
            cov.states[entry] = 1
            cov.transitions[tid] = 1
            for name in emitted:
                cov.mark_emit(name)
        if node.target == TERMINATED:
            self.terminated = True
        else:
            self.state = node.target
        self.instants += 1
        visible = {
            name for name in emitted
            if self.signals[name].direction == "output"
        }
        out_values = {}
        for name in visible:
            slot = self.signals[name]
            if not slot.is_pure:
                out_values[name] = slot.load()
        return ReactorOutput(
            emitted=visible,
            values=out_values,
            terminated=self.terminated,
            delta_requested=delta,
            rounds=1,
        )

    # Same convenience surface as the interpreter-backed Reactor.

    def input_signals(self):
        """Names of the module's declared input signals (sorted)."""
        return sorted(slot.name for slot in self.signals.inputs())

    def signal_value(self, name):
        return self.signals[name].load()

    def variable(self, name):
        var = self.env.lookup(name)
        if var is None:
            raise EvalError("module %s has no variable %r"
                            % (self.module.name, name))
        return var.load()

    def data_bytes(self):
        return self.space.allocated_bytes

    def reset(self):
        self.state = self.efsm.initial
        self.terminated = False
        self.instants = 0


# ----------------------------------------------------------------------
# Standalone-module emitter.

_PY_TEMPLATE = '''\
"""Auto-generated Python reactor for ECL module ``%(name)s``.

Produced by the ``py`` backend of the repro-ecl pipeline.  The compiled
EFSM is embedded below (pickled, base64); loading it requires the
``repro`` package on the import path.

    from %(name)s import reactor
    r = reactor()
    out = r.react(inputs=["some_signal"])
"""

import base64
import pickle

_EFSM_PICKLE = (
%(blob)s
)


def load_efsm():
    """The embedded :class:`repro.efsm.machine.Efsm`."""
    return pickle.loads(base64.b64decode(_EFSM_PICKLE))


def reactor(counter=None, builtins=None):
    """A fresh runnable :class:`repro.codegen.py_backend.EfsmReactor`."""
    from repro.codegen.py_backend import EfsmReactor
    return EfsmReactor(load_efsm(), counter=counter, builtins=builtins)
'''


def generate_python(efsm):
    """Render the EFSM as a standalone importable Python module."""
    import base64
    import pickle

    encoded = base64.b64encode(pickle.dumps(efsm)).decode("ascii")
    chunks = [encoded[i:i + 64] for i in range(0, len(encoded), 64)]
    blob = "\n".join('    "%s"' % chunk for chunk in chunks)
    return _PY_TEMPLATE % {"name": efsm.name, "blob": blob}


from ..pipeline.registry import backend as _backend  # noqa: E402


@_backend("py", requires=("efsm",), extensions=(".py",),
          description="standalone Python reactor module (simulation)")
def _emit_py(build):
    return {build.name + ".py": generate_python(build.efsm)}
