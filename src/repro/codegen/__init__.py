"""Back-ends (the paper's phase 3): software and hardware synthesis.

* :mod:`repro.codegen.py_backend` — executable automaton (simulation);
* :mod:`repro.codegen.c_backend` — C software synthesis;
* :mod:`repro.codegen.vhdl_backend` / :mod:`repro.codegen.verilog_backend`
  — RTL, available only when "the data-dominated C part is empty"
  (paper, ECL Overview).
"""

from .c_backend import CBackend, CModule, generate_c
from .py_backend import EfsmReactor
from .verilog_backend import VerilogBackend, generate_verilog
from .vhdl_backend import VhdlBackend, generate_vhdl

__all__ = [
    "CBackend",
    "CModule",
    "generate_c",
    "EfsmReactor",
    "VerilogBackend",
    "generate_verilog",
    "VhdlBackend",
    "generate_vhdl",
]
