"""Back-ends (the paper's phase 3): software and hardware synthesis.

* :mod:`repro.codegen.py_backend` — executable automaton (simulation)
  and a standalone-Python-module emitter;
* :mod:`repro.codegen.c_backend` — C software synthesis;
* :mod:`repro.codegen.vhdl_backend` / :mod:`repro.codegen.verilog_backend`
  — RTL, available only when "the data-dominated C part is empty"
  (paper, ECL Overview);
* :mod:`repro.codegen.esterel_backend` / :mod:`repro.codegen.dot_backend`
  — phase-1 Esterel glue and Graphviz, as registered emitters.

Every module here registers an emitter into
:data:`repro.pipeline.registry.DEFAULT_REGISTRY` under its ``--emit``
name (``c``, ``py``, ``vhdl``, ``verilog``, ``esterel``, ``dot``).
"""

from . import dot_backend  # noqa: F401  (registers "dot")
from . import esterel_backend  # noqa: F401  (registers "esterel")
from .c_backend import CBackend, CModule, generate_c
from .py_backend import EfsmReactor, generate_python
from .verilog_backend import VerilogBackend, generate_verilog
from .vhdl_backend import VhdlBackend, generate_vhdl

__all__ = [
    "CBackend",
    "CModule",
    "generate_c",
    "EfsmReactor",
    "generate_python",
    "VerilogBackend",
    "generate_verilog",
    "VhdlBackend",
    "generate_vhdl",
]
