"""``esterel`` backend: the paper's phase-1 artifacts as an emitter.

Phase 1 of the ECL flow produces three files per module — the Esterel
program for the reactive part, plus a C file and header carrying the
extracted data part (:mod:`repro.ecl.glue`).  This module wraps that
glue generator as a registered pipeline backend so batch builds and
``eclc compile --emit esterel`` reach it through the registry.
"""

from __future__ import annotations

from ..ecl.glue import generate_glue
from ..pipeline.registry import backend


@backend("esterel", requires=("kernel", "types"),
         extensions=(".strl", ".c", ".h"),
         description="phase-1 Esterel program + C data glue")
def _emit_esterel(build):
    glue = generate_glue(build.kernel, build.types)
    return {
        build.name + ".strl": glue.esterel_text,
        build.name + "_data.c": glue.c_text,
        build.name + "_data.h": glue.header_text,
    }
