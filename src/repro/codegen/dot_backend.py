"""``dot`` backend: Graphviz rendering of the EFSM as an emitter.

Wraps :func:`repro.efsm.dot.to_dot` as a registered pipeline backend so
the EFSM visualisation is reachable through the same registry as the
synthesis back-ends.
"""

from __future__ import annotations

from ..efsm.dot import to_dot
from ..pipeline.registry import backend


@backend("dot", requires=("efsm",), extensions=(".dot",),
         description="Graphviz rendering of the EFSM")
def _emit_dot(build):
    return {build.name + ".dot": to_dot(build.efsm)}
