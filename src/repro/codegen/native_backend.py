"""Native back-end: emit the closure-compiled reaction code as files.

Two files per module:

* ``<name>_native.py`` — a standalone importable reactor module.  The
  EFSM and its lowered :class:`~repro.runtime.native.NativeCode` bundle
  are embedded (pickled, base64); ``reactor()`` binds a fresh
  :class:`~repro.runtime.native.NativeReactor` without re-running the
  lowerer.
* ``<name>_reactions.py`` — the generated per-state reaction functions
  as readable Python source (what :func:`compile_native` produced), for
  inspection and review.

Because this is a registered pipeline backend, the emitted sources are
content-addressed in the :class:`~repro.pipeline.cache.ArtifactCache`:
a warm build serves both files (and the lowering they embody) from the
cache without touching the compiler at all.
"""

from __future__ import annotations

import base64
import pickle

from ..runtime.native import compile_native

_NATIVE_TEMPLATE = '''\
"""Auto-generated native reactor for ECL module ``%(name)s``.

Produced by the ``native`` backend of the repro-ecl pipeline.  The
compiled EFSM and its lowered reaction code are embedded below
(pickled, base64); loading requires the ``repro`` package on the
import path.

    from %(name)s_native import reactor
    r = reactor()
    out = r.react(inputs=["some_signal"])

%(stats)s
"""

import base64
import pickle

_BLOB = (
%(blob)s
)


def load_bundle():
    """The embedded ``(efsm, native_code)`` pair."""
    return pickle.loads(base64.b64decode(_BLOB))


def reactor(counter=None, builtins=None):
    """A fresh runnable :class:`repro.runtime.native.NativeReactor`."""
    from repro.runtime.native import NativeReactor

    efsm, code = load_bundle()
    return NativeReactor(efsm, code=code, counter=counter,
                         builtins=builtins)
'''


def generate_native(efsm, code=None):
    """Render the EFSM as standalone native-reactor sources.

    Returns ``{filename: text}`` with the runnable module and the
    readable reaction functions.
    """
    if code is None:
        code = compile_native(efsm)
    encoded = base64.b64encode(pickle.dumps((efsm, code))).decode("ascii")
    chunks = [encoded[i : i + 64] for i in range(0, len(encoded), 64)]
    blob = "\n".join('    "%s"' % chunk for chunk in chunks)
    runnable = _NATIVE_TEMPLATE % {
        "name": efsm.name,
        "blob": blob,
        "stats": code.describe(),
    }
    return {
        efsm.name + "_native.py": runnable,
        efsm.name + "_reactions.py": code.source,
    }


from ..pipeline.registry import backend as _backend  # noqa: E402


@_backend(
    "native",
    requires=("efsm",),
    extensions=(".py",),
    description="closure-compiled Python reactor (fastest software simulation)",
)
def _emit_native(build):
    return generate_native(build.efsm)
