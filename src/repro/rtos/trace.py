"""Execution tracing for the simulated RTOS.

Records every scheduling decision — dispatches, context switches, event
posts, self triggers — with a logical timestamp, and renders a textual
task timeline (a poor man's Gantt chart) plus per-task statistics.
Attach with :meth:`TraceRecorder.attach` before ``kernel.start()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class TraceEvent:
    """One scheduler-visible occurrence."""

    time: int
    kind: str            # dispatch | post | self_trigger | idle
    task: Optional[str] = None
    signal: Optional[str] = None
    emitted: tuple = ()

    def describe(self):
        if self.kind == "dispatch":
            extra = " -> %s" % "+".join(self.emitted) if self.emitted else ""
            return "t%04d dispatch %s%s" % (self.time, self.task, extra)
        if self.kind == "post":
            return "t%04d post %s -> %s" % (self.time, self.signal,
                                            self.task or "<env>")
        if self.kind == "self_trigger":
            return "t%04d self-trigger %s" % (self.time, self.task)
        return "t%04d %s" % (self.time, self.kind)


class TraceRecorder:
    """Wraps a kernel's tasks to log their dispatches."""

    def __init__(self):
        self.events: List[TraceEvent] = []
        self.time = 0
        self._kernel = None

    def attach(self, kernel):
        """Instrument every task of ``kernel`` (call before start())."""
        if self._kernel is not None:
            raise RuntimeError("recorder already attached")
        self._kernel = kernel
        for task in kernel.tasks:
            task.dispatch = self._wrap_dispatch(task, task.dispatch)
            task.deliver = self._wrap_deliver(task, task.deliver)
        return self

    def _wrap_dispatch(self, task, original):
        def dispatch():
            emitted = original()
            self.events.append(TraceEvent(
                time=self.time, kind="dispatch", task=task.name,
                emitted=tuple(sorted(emitted))))
            self.time += 1
            if task.ready:
                self.events.append(TraceEvent(
                    time=self.time, kind="self_trigger", task=task.name))
            return emitted
        return dispatch

    def _wrap_deliver(self, task, original):
        def deliver(network_signal, value=None):
            self.events.append(TraceEvent(
                time=self.time, kind="post", task=task.name,
                signal=network_signal))
            return original(network_signal, value)
        return deliver

    # ------------------------------------------------------------------

    def dispatches(self, task_name=None):
        return [e for e in self.events if e.kind == "dispatch"
                and (task_name is None or e.task == task_name)]

    def per_task_counts(self):
        counts: Dict[str, int] = {}
        for event in self.dispatches():
            counts[event.task] = counts.get(event.task, 0) + 1
        return counts

    def timeline(self, width=64):
        """Text Gantt: one row per task, one column per dispatch slot."""
        dispatches = self.dispatches()
        if not dispatches:
            return "(no dispatches recorded)"
        tasks = sorted({e.task for e in dispatches})
        slots = dispatches[-width:]
        rows = []
        for task in tasks:
            cells = "".join("#" if event.task == task else "." for event in slots)
            rows.append("%-12s |%s|" % (task, cells))
        return "\n".join(rows)

    def log(self, limit=None):
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(event.describe() for event in events)

    def stats_summary(self):
        """One line of kernel counters (task-vs-RTOS accounting) to
        print under :meth:`timeline`."""
        if self._kernel is None:
            return "(recorder not attached)"
        stats = self._kernel.stats_dict()
        return ("dispatches=%(dispatches)d "
                "context_switches=%(context_switches)d "
                "posts=%(posts)d self_triggers=%(self_triggers)d "
                "lost_events=%(lost_events)d" % stats)
