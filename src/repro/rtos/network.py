"""AsyncNetwork: the asynchronous counterpart of
:class:`repro.runtime.network.SyncNetwork`.

Same construction API (``add_node`` with formal->network signal
bindings), but execution goes through the RTOS: each node is a
prioritized task, internal signals travel through event flags /
one-place mailboxes, and one :meth:`step` = post the environment events
and run the dispatch cascade to quiescence.  This is the "processes
communicating via signals" composition of the paper's Figure 4
discussion, packaged for exploration code that wants to swap the two
composition styles behind one interface.
"""

from __future__ import annotations

from ..errors import RtosError
from .kernel import RtosKernel
from .tasks import RtosTask


class AsyncNetwork:
    """RTOS-backed composition with the SyncNetwork surface."""

    def __init__(self, name="async-net"):
        self.kernel = RtosKernel(name)
        self._started = False
        self._next_priority = 100

    # ------------------------------------------------------------------
    # Construction

    def add_node(self, name, reactor, bindings=None, priority=None):
        """Register ``reactor`` as a task.

        Without an explicit ``priority``, registration order decides:
        earlier nodes get higher priority (useful for the
        consumer-before-producer arming described in EXPERIMENTS.md).
        """
        if self._started:
            raise RtosError("cannot add nodes after the network started")
        if priority is None:
            priority = self._next_priority
            self._next_priority -= 1
        self.kernel.add_task(
            RtosTask(name, reactor, priority=priority, bindings=bindings))
        return self

    # ------------------------------------------------------------------
    # Execution

    def start(self):
        """Run every task's start-up reaction (modules reach their first
        await).  Called implicitly by the first :meth:`step`."""
        if not self._started:
            self._started = True
            self.kernel.start()
        return self

    def step(self, inputs=None, values=None):
        """Post environment events, run to quiescence, return the
        signals that escaped to the environment
        (``{name: value-or-None}``)."""
        self.start()
        external = {}
        for name in set(inputs or ()):
            self.kernel.post_input(name)
            external.update(self.kernel.run_until_idle())
        for name, value in (values or {}).items():
            self.kernel.post_input(name, value)
            external.update(self.kernel.run_until_idle())
        if not inputs and not values:
            external.update(self.kernel.run_until_idle())
        return external

    # ------------------------------------------------------------------

    def node(self, name):
        return self.kernel.task(name).reactor

    @property
    def node_names(self):
        return [task.name for task in self.kernel.tasks]

    @property
    def stats(self):
        return self.kernel.stats

    def stats_dict(self):
        """The kernel's counters plus the network lost-event total."""
        return self.kernel.stats_dict()

    def lost_events(self):
        return self.kernel.total_lost_events()
