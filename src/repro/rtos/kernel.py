"""A small deterministic real-time kernel (simulation).

This reproduces the substrate of the paper's asynchronous rows in
Table 1: "three source files, implemented as separate tasks under
control of a simple real-time kernel" [1, the POLIS RTOS].  The kernel
is event-driven and priority-scheduled:

* each task owns slot-indexed carriers for its input signals (event
  flag / one-place mailbox semantics, see :mod:`repro.rtos.tasks`);
* posting to a task's input makes it *ready*; the scheduler always runs
  the highest-priority ready task (FIFO among equals);
* one dispatch = one synchronous reaction of the task's module over the
  inputs pending at that moment;
* emitted outputs are posted to consumer tasks (or to the environment),
  possibly readying them — the cascade runs until no task is ready
  ("run to completion" between environment events);
* a reaction that pauses on ECL's ``await()`` requests a *self trigger*
  (paper, footnote 3) so the task is rescheduled without a new event.

The dispatch cascade is batched: signal routing is a table precomputed
at ``start()`` (network signal -> consumer tasks), the ready scan walks
a priority-sorted task order, and a dispatched task keeps running in a
run-to-completion *burst* for as long as it stays ready and nothing of
higher scan priority woke — the scheduler is not re-entered per event.
The accounting is exactly what the naive pick-dispatch loop would
produce: every dispatch decision (including burst continuations) counts
one scheduler invocation, so cycle reports are engine-independent.

Every kernel operation is counted; :mod:`repro.cost` turns the counts
into MIPS-R3000-style cycles so that task time and RTOS time can be
reported separately, as Table 1 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RtosError


@dataclass
class KernelStats:
    """Raw operation counts accumulated by the kernel."""

    dispatches: int = 0
    context_switches: int = 0
    scheduler_invocations: int = 0
    posts: int = 0
    self_triggers: int = 0
    idle_transitions: int = 0
    lost_events: int = 0

    def as_dict(self):
        return dict(self.__dict__)


class RtosKernel:
    """Priority scheduler over :class:`~repro.rtos.tasks.RtosTask`s."""

    def __init__(self, name="rtos"):
        self.name = name
        self.tasks = []
        self._by_name = {}
        self.stats = KernelStats()
        self._current = None
        self._started = False
        #: tasks sorted by (-priority, registration) — the scan order.
        self._order = []
        #: network signal -> tuple of consumer tasks.
        self._routes = {}

    # ------------------------------------------------------------------

    def add_task(self, task):
        if self._started:
            raise RtosError("cannot add task %r after started" % task.name)
        if task.name in self._by_name:
            raise RtosError("task %r already registered" % task.name)
        task.kernel = self
        self.tasks.append(task)
        self._by_name[task.name] = task
        return task

    def task(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise RtosError("no task named %r" % name)

    def _bind(self):
        """Freeze the scan order and the signal routing table."""
        order = sorted(self.tasks, key=lambda t: -t.priority)
        self._order = order
        for position, task in enumerate(order):
            task._order_pos = position
        routes = {}
        for task in self.tasks:
            for signal in task.consumed_signals():
                routes.setdefault(signal, []).append(task)
        self._routes = {
            signal: tuple(consumers)
            for signal, consumers in routes.items()
        }

    def start(self):
        """Initial dispatch: every task runs its start-up reaction (so
        modules reach their first await, as the synchronous start-up
        instant does)."""
        if self._started:
            raise RtosError("kernel already started")
        self._started = True
        self._bind()
        for task in self._order:
            task.ready = True
        self.run_until_idle()

    # ------------------------------------------------------------------

    def post_input(self, signal, value=None):
        """Environment event: deliver to every task consuming ``signal``."""
        if not self._started:
            raise RtosError("kernel not started")
        consumers = self._routes.get(signal)
        if not consumers:
            raise RtosError(
                "no task consumes signal %r (consumed signals: %s)"
                % (signal, ", ".join(self.input_signals()) or "none"))
        for task in consumers:
            task.deliver(signal, value)
        self.stats.posts += 1

    def input_signals(self):
        """Network signal names some task consumes (sorted) — the
        kernel's environment-facing input alphabet."""
        names = set()
        for task in self.tasks:
            names.update(task.consumed_signals())
        return sorted(names)

    def run_until_idle(self, max_dispatches=100000):
        """Run ready tasks (highest priority first) to quiescence.

        Returns the signals emitted to the environment during the
        cascade, as ``{signal: last value or None}``.
        """
        external = {}
        budget = max_dispatches
        stats = self.stats
        order = self._order
        task_count = len(order)
        while True:
            stats.scheduler_invocations += 1
            candidate = None
            position = 0
            while position < task_count:
                task = order[position]
                if task.ready:
                    candidate = task
                    break
                position += 1
            if candidate is None:
                stats.idle_transitions += 1
                return external
            # Run-to-completion burst: this task keeps dispatching for
            # as long as it stays ready (await() self triggers) and no
            # task of higher scan priority woke during routing.
            while True:
                if budget <= 0:
                    raise RtosError(
                        "scheduler exceeded %d dispatches (livelock? an "
                        "await() self-trigger loop never sleeps)"
                        % max_dispatches)
                budget -= 1
                if candidate is not self._current:
                    stats.context_switches += 1
                    self._current = candidate
                stats.dispatches += 1
                emitted = candidate.dispatch()
                woke = task_count
                if emitted:
                    woke = self._route_many(candidate, emitted, external)
                if not candidate.ready or woke < position:
                    break
                stats.scheduler_invocations += 1

    def _route_many(self, producer, emitted, external):
        """Deliver every emitted signal; returns the smallest scan
        position readied (task_count when none woke)."""
        routes = self._routes
        stats = self.stats
        woke = len(self._order)
        for signal, value in emitted.items():
            stats.posts += 1
            consumed = False
            for task in routes.get(signal, ()):
                if task is producer:
                    continue
                task.deliver(signal, value)
                consumed = True
                if task._order_pos < woke:
                    woke = task._order_pos
            if not consumed:
                external[signal] = value
        return woke

    def note_self_trigger(self):
        self.stats.self_triggers += 1

    def note_lost_event(self):
        self.stats.lost_events += 1

    # ------------------------------------------------------------------

    def total_lost_events(self):
        return sum(task.lost_events() for task in self.tasks) + self.stats.lost_events

    def stats_dict(self):
        """The raw counters plus the network-wide lost-event total —
        the payload :class:`~repro.farm.jobs.SimResult` carries."""
        stats = self.stats.as_dict()
        stats["lost_events"] = self.total_lost_events()
        return stats
