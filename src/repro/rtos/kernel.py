"""A small deterministic real-time kernel (simulation).

This reproduces the substrate of the paper's asynchronous rows in
Table 1: "three source files, implemented as separate tasks under
control of a simple real-time kernel" [1, the POLIS RTOS].  The kernel
is event-driven and priority-scheduled:

* each task owns event flags / mailboxes for its input signals;
* posting to a task's input makes it *ready*; the scheduler always runs
  the highest-priority ready task (FIFO among equals);
* one dispatch = one synchronous reaction of the task's module over the
  inputs pending at that moment;
* emitted outputs are posted to consumer tasks (or to the environment),
  possibly readying them — the cascade runs until no task is ready
  ("run to completion" between environment events);
* a reaction that pauses on ECL's ``await()`` requests a *self trigger*
  (paper, footnote 3) so the task is rescheduled without a new event.

Every kernel operation is counted; :mod:`repro.cost` turns the counts
into MIPS-R3000-style cycles so that task time and RTOS time can be
reported separately, as Table 1 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RtosError


@dataclass
class KernelStats:
    """Raw operation counts accumulated by the kernel."""

    dispatches: int = 0
    context_switches: int = 0
    scheduler_invocations: int = 0
    posts: int = 0
    self_triggers: int = 0
    idle_transitions: int = 0
    lost_events: int = 0

    def as_dict(self):
        return dict(self.__dict__)


class RtosKernel:
    """Priority scheduler over :class:`~repro.rtos.tasks.RtosTask`s."""

    def __init__(self, name="rtos"):
        self.name = name
        self.tasks = []
        self._by_name = {}
        self.stats = KernelStats()
        self._current = None
        self._started = False

    # ------------------------------------------------------------------

    def add_task(self, task):
        if task.name in self._by_name:
            raise RtosError("task %r already registered" % task.name)
        task.kernel = self
        self.tasks.append(task)
        self._by_name[task.name] = task
        return task

    def task(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise RtosError("no task named %r" % name)

    def start(self):
        """Initial dispatch: every task runs its start-up reaction (so
        modules reach their first await, as the synchronous start-up
        instant does)."""
        if self._started:
            raise RtosError("kernel already started")
        self._started = True
        for task in sorted(self.tasks, key=lambda t: -t.priority):
            task.ready = True
        self.run_until_idle()

    # ------------------------------------------------------------------

    def post_input(self, signal, value=None):
        """Environment event: deliver to every task consuming ``signal``."""
        if not self._started:
            raise RtosError("kernel not started")
        delivered = False
        for task in self.tasks:
            if task.accepts(signal):
                task.deliver(signal, value)
                delivered = True
        if not delivered:
            raise RtosError(
                "no task consumes signal %r (consumed signals: %s)"
                % (signal, ", ".join(self.input_signals()) or "none"))
        self.stats.posts += 1

    def input_signals(self):
        """Network signal names some task consumes (sorted) — the
        kernel's environment-facing input alphabet."""
        names = set()
        for task in self.tasks:
            names.update(task.consumed_signals())
        return sorted(names)

    def run_until_idle(self, max_dispatches=100000):
        """Run ready tasks (highest priority first) to quiescence.

        Returns the signals emitted to the environment during the
        cascade, as ``{signal: last value or None}``.
        """
        external = {}
        budget = max_dispatches
        while True:
            self.stats.scheduler_invocations += 1
            candidate = self._pick()
            if candidate is None:
                self.stats.idle_transitions += 1
                return external
            if budget <= 0:
                raise RtosError(
                    "scheduler exceeded %d dispatches (livelock? an "
                    "await() self-trigger loop never sleeps)"
                    % max_dispatches)
            budget -= 1
            if candidate is not self._current:
                self.stats.context_switches += 1
                self._current = candidate
            self.stats.dispatches += 1
            emitted = candidate.dispatch()
            for signal, value in emitted.items():
                self._route(candidate, signal, value, external)

    def _pick(self):
        best = None
        for task in self.tasks:
            if not task.ready:
                continue
            if best is None or task.priority > best.priority:
                best = task
        return best

    def _route(self, producer, signal, value, external):
        self.stats.posts += 1
        consumed = False
        for task in self.tasks:
            if task is producer:
                continue
            if task.accepts(signal):
                task.deliver(signal, value)
                consumed = True
        if not consumed:
            external[signal] = value

    def note_self_trigger(self):
        self.stats.self_triggers += 1

    def note_lost_event(self):
        self.stats.lost_events += 1

    # ------------------------------------------------------------------

    def total_lost_events(self):
        return sum(task.lost_events() for task in self.tasks) \
            + self.stats.lost_events
