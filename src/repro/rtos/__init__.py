"""The simulated real-time kernel (Table 1's asynchronous substrate).

* :mod:`repro.rtos.kernel` — deterministic priority scheduler;
* :mod:`repro.rtos.services` — event flags, mailboxes, queues;
* :mod:`repro.rtos.tasks` — module reactors as schedulable tasks.
"""

from .kernel import KernelStats, RtosKernel
from .network import AsyncNetwork
from .services import EventFlag, Mailbox, MessageQueue
from .tasks import CarrierView, RtosTask
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "AsyncNetwork",
    "CarrierView",
    "KernelStats",
    "RtosKernel",
    "EventFlag",
    "Mailbox",
    "MessageQueue",
    "RtosTask",
    "TraceEvent",
    "TraceRecorder",
]
