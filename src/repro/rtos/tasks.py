"""RTOS tasks wrapping compiled ECL modules.

One :class:`RtosTask` is one module instance with its input signals
mapped to slot-indexed carriers (paper: ECL signals are "conceptually
closer to the event flag or mailbox synchronization services offered by
several RTOSs").  A dispatch drains whatever inputs are pending and
runs exactly one synchronous reaction over them — the CFSM execution
model of [1].

The carriers keep the event-flag / one-place-mailbox *semantics* of
:mod:`repro.rtos.services` (a second pure event before consumption is
lost, a fresh value overwrites an unconsumed one and counts it lost)
but store them as flat pending/value arrays instead of one object per
signal, so a dispatch is array moves rather than dict traffic.

Engine selection happens at construction: hand the task any reactor
(interpreter, :class:`~repro.codegen.py_backend.EfsmReactor`, or
:class:`~repro.runtime.native.NativeReactor`).  For a native reactor
the task binds a **fast dispatch path**: pending events are written
straight into the reactor's ``P``/``S`` slot arrays (the layout the
lowered state functions read) and the state function is called
directly, bypassing the per-instant dict handling of ``react()``.
Both paths are observably identical — same emissions, same lost-event
accounting, same kernel statistics.
"""

from __future__ import annotations


from ..efsm.machine import TERMINATED
from ..errors import RtosError
from ..lang.types import PureType


class CarrierView:
    """Read-only snapshot of one input carrier (introspection only —
    the live state is the task's slot arrays)."""

    __slots__ = ("name", "is_pure", "pending", "value", "post_count", "lost_count")

    def __init__(self, name, is_pure, pending, value, post_count, lost_count):
        self.name = name
        self.is_pure = is_pure
        self.pending = pending
        self.value = value
        self.post_count = post_count
        self.lost_count = lost_count

    def __repr__(self):
        state = "pending" if self.pending else "empty"
        return "<CarrierView %s %s>" % (self.name, state)


class _NativeBinding:
    """Everything the native fast path needs, resolved once per task."""

    __slots__ = ("inject", "out_bits", "mask_cache")

    def __init__(self, inject, out_bits):
        #: per-carrier ``(pidx, sidx, fn)``: sidx >= 0 writes the slot
        #: array through ``fn`` (the type's wrap), sidx < 0 with fn
        #: stores through the signal (mem-backed value), fn None = pure.
        self.inject = inject
        #: per-output ``(bit, network_name, loader_or_None)``.
        self.out_bits = out_bits
        #: emitted-mask -> tuple of ``(network_name, loader_or_None)``.
        self.mask_cache = {}

    def decode(self, mask):
        entries = tuple(
            (network, loader)
            for bit, network, loader in self.out_bits
            if mask & bit
        )
        self.mask_cache[mask] = entries
        return entries


class RtosTask:
    """One schedulable task around a module reactor."""

    def __init__(self, name, reactor, priority=1, bindings=None):
        self.name = name
        self.reactor = reactor
        self.priority = priority
        self.kernel = None
        self.ready = False
        #: position in the kernel's priority scan order (set at start).
        self._order_pos = 0
        binding = dict(bindings or {})
        formals = []
        networks = []
        pures = []
        #: network signal name -> carrier index
        self._by_network = {}
        #: formal output name -> network signal name
        self._output_names = {}
        for param in reactor.module.params:
            network = binding.get(param.name, param.name)
            if param.direction == "input":
                self._by_network[network] = len(formals)
                formals.append(param.name)
                networks.append(network)
                pures.append(isinstance(param.type, PureType))
            else:
                self._output_names[param.name] = network
        count = len(formals)
        self._formals = tuple(formals)
        self._networks = tuple(networks)
        self._pure = tuple(pures)
        self._ncarriers = count
        #: slot-indexed carrier state (parallel arrays).
        self._pend = [0] * count
        self._vals = [None] * count
        self._posts = [0] * count
        self._lost = [0] * count
        self.dispatch_count = 0
        self.reaction_instants = 0
        self._native = self._bind_native(reactor)

    # ------------------------------------------------------------------

    def _bind_native(self, reactor):
        """A :class:`_NativeBinding` when ``reactor`` exposes the
        native slot layout (duck-typed: no import of the runtime
        package needed for the generic engines)."""
        code = getattr(reactor, "code", None)
        if code is None or getattr(reactor, "_funcs", None) is None:
            return None
        inject = []
        for index, formal in enumerate(self._formals):
            slot = reactor.signals[formal]
            if self._pure[index]:
                inject.append((slot.pidx, -1, None))
            elif slot.sidx >= 0:
                inject.append((slot.pidx, slot.sidx, slot.type.wrap))
            else:
                inject.append((slot.pidx, -1, slot.store))
        out_bits = []
        for formal, bit in code.output_bits:
            slot = reactor.signals[formal]
            loader = None if slot.is_pure else slot.load
            out_bits.append((bit, self._output_names[formal], loader))
        return _NativeBinding(tuple(inject), tuple(out_bits))

    @property
    def uses_native_path(self):
        """True when dispatches run through the slot-indexed fast path."""
        return self._native is not None

    # ------------------------------------------------------------------

    def accepts(self, network_signal):
        return network_signal in self._by_network

    def consumed_signals(self):
        """Network signal names this task's inputs are bound to."""
        return list(self._by_network.keys())

    def produced_signals(self):
        """Network signal names this task's outputs are bound to."""
        return list(self._output_names.values())

    def input_alphabet(self):
        """``(network_name, is_pure)`` per input carrier (sorted) —
        what a stimulus generator may post at this task.  Inputs whose
        value type is an aggregate are omitted (no scalar stimulus
        can be synthesized for them)."""
        alphabet = []
        for network, index in sorted(self._by_network.items()):
            pure = self._pure[index]
            if not pure:
                slot = self.reactor.signals.get(self._formals[index])
                if slot is not None and not slot.type.is_scalar():
                    continue
            alphabet.append((network, pure))
        return alphabet

    def deliver(self, network_signal, value=None):
        """Post an event/value into this task's input carrier.

        Carrier semantics match the classic services: a pure event on a
        still-pending carrier is lost (CFSM event flags latch, they do
        not count), a value on a still-pending carrier overwrites the
        unconsumed one and counts it lost (one-place mailbox).
        """
        index = self._by_network.get(network_signal)
        if index is None:
            raise RtosError("task %r does not consume %r" % (self.name, network_signal))
        if self._pend[index]:
            self._lost[index] += 1
        self._pend[index] = 1
        self._posts[index] += 1
        if not self._pure[index]:
            self._vals[index] = value
        self.ready = True

    def dispatch(self):
        """Run one reaction over the pending inputs.

        Returns ``{network_signal: value-or-None}`` for every output
        emitted by the reaction.
        """
        if self._native is not None:
            return self._dispatch_native()
        return self._dispatch_generic()

    def _dispatch_generic(self):
        self.ready = False
        pure = []
        valued = {}
        pend = self._pend
        vals = self._vals
        formals = self._formals
        pures = self._pure
        for index in range(self._ncarriers):
            if pend[index]:
                pend[index] = 0
                if pures[index]:
                    pure.append(formals[index])
                else:
                    valued[formals[index]] = vals[index]
                    vals[index] = None
        output = self.reactor.react(inputs=pure, values=valued)
        self.dispatch_count += 1
        self.reaction_instants += 1
        if output.delta_requested and not output.terminated:
            # await() pause: the task must run again without any input
            # event (paper, footnote 3) — a scheduler-visible self trigger.
            self.ready = True
            if self.kernel is not None:
                self.kernel.note_self_trigger()
        emitted = {}
        for formal in output.emitted:
            emitted[self._output_names[formal]] = output.values.get(formal)
        return emitted

    def _dispatch_native(self):
        """Slot-indexed dispatch: pending carriers move straight into
        the native reactor's presence/value arrays and the state
        function runs directly — no instant dicts, no ReactorOutput."""
        self.ready = False
        reactor = self.reactor
        pend = self._pend
        vals = self._vals
        if reactor.terminated:
            for index in range(self._ncarriers):
                pend[index] = 0
                vals[index] = None
            self.dispatch_count += 1
            self.reaction_instants += 1
            return {}
        binding = self._native
        present = reactor._present
        present[:] = reactor._pzero
        slots = reactor._slots
        inject = binding.inject
        for index in range(self._ncarriers):
            if pend[index]:
                pend[index] = 0
                pidx, sidx, fn = inject[index]
                present[pidx] = 1
                value = vals[index]
                if value is not None:
                    vals[index] = None
                    if sidx >= 0:
                        slots[sidx] = fn(value)
                    else:
                        fn(value)
        reactor.env.count("react")
        entry = reactor.state
        target, mask, packed = reactor._funcs[entry]()
        reactor.instants += 1
        self.dispatch_count += 1
        self.reaction_instants += 1
        cov = reactor.coverage
        if cov is not None:
            reactor._mark_coverage(cov, entry, packed)
        if target == TERMINATED:
            reactor.terminated = True
        else:
            reactor.state = target
            if packed & 1:
                self.ready = True
                if self.kernel is not None:
                    self.kernel.note_self_trigger()
        if not mask:
            return {}
        entries = binding.mask_cache.get(mask)
        if entries is None:
            entries = binding.decode(mask)
        emitted = {}
        for network, loader in entries:
            emitted[network] = loader() if loader is not None else None
        return emitted

    # ------------------------------------------------------------------

    def lost_events(self):
        return sum(self._lost)

    def post_count(self):
        return sum(self._posts)

    def carrier(self, formal):
        """A :class:`CarrierView` snapshot of one input carrier."""
        try:
            index = self._formals.index(formal)
        except ValueError:
            raise RtosError("task %r has no input %r" % (self.name, formal))
        return CarrierView(
            "%s.%s" % (self.name, formal),
            self._pure[index],
            bool(self._pend[index]),
            self._vals[index],
            self._posts[index],
            self._lost[index],
        )

    def __repr__(self):
        return "<RtosTask %s prio=%d>" % (self.name, self.priority)
