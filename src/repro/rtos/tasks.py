"""RTOS tasks wrapping compiled ECL modules.

One :class:`RtosTask` is one module instance (interpreter- or
EFSM-backed reactor) with its input signals mapped to event flags and
one-place mailboxes (paper: ECL signals are "conceptually closer to the
event flag or mailbox synchronization services offered by several
RTOSs").  A dispatch drains whatever inputs are pending and runs exactly
one synchronous reaction over them — the CFSM execution model of [1].
"""

from __future__ import annotations


from ..errors import RtosError
from ..lang.types import PureType
from .services import EventFlag, Mailbox


class RtosTask:
    """One schedulable task around a module reactor."""

    def __init__(self, name, reactor, priority=1, bindings=None):
        self.name = name
        self.reactor = reactor
        self.priority = priority
        self.kernel = None
        self.ready = False
        #: formal input name -> carrier (EventFlag | Mailbox)
        self._inputs = {}
        #: network signal name -> formal input name
        self._by_network = {}
        #: formal output name -> network signal name
        self._output_names = {}
        binding = dict(bindings or {})
        for param in reactor.module.params:
            network = binding.get(param.name, param.name)
            if param.direction == "input":
                if isinstance(param.type, PureType):
                    carrier = EventFlag("%s.%s" % (name, param.name))
                else:
                    carrier = Mailbox("%s.%s" % (name, param.name))
                self._inputs[param.name] = carrier
                self._by_network[network] = param.name
            else:
                self._output_names[param.name] = network
        self.dispatch_count = 0
        self.reaction_instants = 0

    # ------------------------------------------------------------------

    def accepts(self, network_signal):
        return network_signal in self._by_network

    def consumed_signals(self):
        """Network signal names this task's inputs are bound to."""
        return list(self._by_network.keys())

    def produced_signals(self):
        """Network signal names this task's outputs are bound to."""
        return list(self._output_names.values())

    def input_alphabet(self):
        """``(network_name, is_pure)`` per input carrier (sorted) —
        what a stimulus generator may post at this task.  Inputs whose
        value type is an aggregate are omitted (no scalar stimulus
        can be synthesized for them)."""
        alphabet = []
        for network, formal in sorted(self._by_network.items()):
            pure = isinstance(self._inputs[formal], EventFlag)
            if not pure:
                slot = self.reactor.signals.get(formal)
                if slot is not None and not slot.type.is_scalar():
                    continue
            alphabet.append((network, pure))
        return alphabet

    def deliver(self, network_signal, value=None):
        """Post an event/value into this task's input carrier."""
        formal = self._by_network.get(network_signal)
        if formal is None:
            raise RtosError("task %r does not consume %r"
                            % (self.name, network_signal))
        carrier = self._inputs[formal]
        if isinstance(carrier, EventFlag):
            carrier.post()
        else:
            carrier.post(value)
        self.ready = True

    def dispatch(self):
        """Run one reaction over the pending inputs.

        Returns ``{network_signal: value-or-None}`` for every output
        emitted by the reaction.
        """
        self.ready = False
        pure = []
        valued = {}
        for formal, carrier in self._inputs.items():
            if isinstance(carrier, EventFlag):
                if carrier.consume():
                    pure.append(formal)
            else:
                had, value = carrier.consume()
                if had:
                    valued[formal] = value
        output = self.reactor.react(inputs=pure, values=valued)
        self.dispatch_count += 1
        self.reaction_instants += 1
        if output.delta_requested and not output.terminated:
            # await() pause: the task must run again without any input
            # event (paper, footnote 3) — a scheduler-visible self trigger.
            self.ready = True
            if self.kernel is not None:
                self.kernel.note_self_trigger()
        emitted = {}
        for formal in output.emitted:
            emitted[self._output_names[formal]] = \
                output.values.get(formal)
        return emitted

    # ------------------------------------------------------------------

    def lost_events(self):
        return sum(c.lost_count for c in self._inputs.values())

    def carrier(self, formal):
        return self._inputs[formal]

    def __repr__(self):
        return "<RtosTask %s prio=%d>" % (self.name, self.priority)
