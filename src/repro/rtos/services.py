"""RTOS synchronization services: event flags and mailboxes.

The paper: "The ECL signal is conceptually closer to the event flag or
mailbox synchronization services offered by several RTOSs".  In the
asynchronous implementation each ECL signal maps to exactly these
semantics: a pure signal behaves as an :class:`EventFlag`, a valued
signal as a one-place :class:`Mailbox` (the "bounded and small"
buffering of CFSM networks the paper cites [1]); deeper
:class:`MessageQueue`s are available for explicitly buffered designs.

:class:`~repro.rtos.tasks.RtosTask` no longer allocates one of these
objects per input — its carriers are slot-indexed pending/value arrays
with the identical post/consume/lost-event semantics (asserted by the
cross-engine property suite).  The classes here remain the reference
implementation of those semantics and the building blocks for designs
that buffer connections explicitly.
"""

from __future__ import annotations

from collections import deque

from ..errors import RtosError


class EventFlag:
    """A latched binary event (pure-signal carrier)."""

    def __init__(self, name):
        self.name = name
        self._set = False
        self.post_count = 0
        self.lost_count = 0

    def post(self):
        if self._set:
            # A second event before consumption is lost (CFSM semantics).
            self.lost_count += 1
        self._set = True
        self.post_count += 1

    def consume(self):
        """Read-and-clear; True if the event had been posted."""
        was_set = self._set
        self._set = False
        return was_set

    @property
    def pending(self):
        return self._set


class Mailbox:
    """A one-place overwrite mailbox (valued-signal carrier).

    ``policy`` is ``"overwrite"`` (CFSM default: a fresh value replaces
    an unconsumed one, which is counted as lost) or ``"error"``.
    """

    def __init__(self, name, policy="overwrite"):
        if policy not in ("overwrite", "error"):
            raise RtosError("unknown mailbox policy %r" % policy)
        self.name = name
        self.policy = policy
        self._value = None
        self._full = False
        self.post_count = 0
        self.lost_count = 0

    def post(self, value):
        if self._full:
            if self.policy == "error":
                raise RtosError("mailbox %r overflow" % self.name)
            self.lost_count += 1
        self._value = value
        self._full = True
        self.post_count += 1

    def consume(self):
        """Return ``(had_message, value)`` and clear the box."""
        if not self._full:
            return False, None
        value = self._value
        self._value = None
        self._full = False
        return True, value

    @property
    def pending(self):
        return self._full


class MessageQueue:
    """A bounded FIFO for explicitly buffered connections."""

    def __init__(self, name, capacity=8, policy="error"):
        if capacity < 1:
            raise RtosError("queue capacity must be >= 1")
        if policy not in ("drop", "error"):
            raise RtosError("unknown queue policy %r" % policy)
        self.name = name
        self.capacity = capacity
        self.policy = policy
        self._items = deque()
        self.post_count = 0
        self.lost_count = 0

    def post(self, value):
        if len(self._items) >= self.capacity:
            if self.policy == "error":
                raise RtosError("queue %r overflow" % self.name)
            self.lost_count += 1
            self.post_count += 1
            return
        self._items.append(value)
        self.post_count += 1

    def consume(self):
        if not self._items:
            return False, None
        return True, self._items.popleft()

    @property
    def pending(self):
        return bool(self._items)

    def __len__(self):
        return len(self._items)
