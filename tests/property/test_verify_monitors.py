"""Property-style guarantees of the compiled monitors.

Monitors judge the *observable* boundary, so the same property bundle
stepped alongside ``interp``, ``efsm`` and ``native`` must produce
identical verdicts (violated properties and instants) under random
stimulus — anything else means either an engine divergence or a
monitor that depends on engine internals.  Coverage bitmaps of the two
EFSM-aware engines must mark identical bits on the same trace.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.designs import AUDIO_BUFFER_ECL, DOOR_CTRL_BUGGY_ECL
from repro.farm import StimulusSpec
from repro.pipeline import Pipeline
from repro.verify import (
    CoverageMap,
    MonitoredReactor,
    compile_bundle,
    eventually,
    implies,
    never,
    present,
    sequence,
    value,
    within,
)

ENGINES = ("interp", "efsm", "native")

#: label -> (source, module, property bundle)
CASES = {
    "door": (
        DOOR_CTRL_BUGGY_ECL,
        "door_ctrl",
        (
            never(present("door_open") & present("motor_on")),
            within("call_btn", "door_open", 6),
            eventually("motor_on", 10),
            never(sequence("door_open", "door_open", "door_open")),
        ),
    ),
    "buffer": (
        AUDIO_BUFFER_ECL,
        "audio_buffer",
        (
            implies("dac_out", "almost_full"),
            never(value("dac_out") > 200),
            within("adc_in", "dac_out", 3),
            eventually("dac_out", 12),
        ),
    ),
}


@pytest.fixture(scope="module")
def modules():
    pipeline = Pipeline()
    handles = {}
    for label, (source, module, _props) in CASES.items():
        build = pipeline.compile_text(source, filename=label + ".ecl")
        handles[label] = build.module(module)
    return handles


def _alphabet(reactor):
    return [(slot.name, slot.is_pure)
            for slot in reactor.signals.inputs()
            if slot.is_pure or slot.type.is_scalar()]


def _verdict(module, engine, program, instants):
    monitored = MonitoredReactor(module.reactor(engine=engine), program)
    for instant in instants:
        pure = [name for name, val in instant.items() if val is None]
        valued = {name: val for name, val in instant.items()
                  if val is not None}
        output = monitored.react(inputs=pure, values=valued)
        if output.terminated:
            break
    return [(v.property_index, v.instant)
            for v in monitored.monitor.violations]


@pytest.mark.parametrize("label", sorted(CASES))
class TestThreeEngineVerdicts:
    @given(salt=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=1, max_value=48))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_monitors_agree_across_engines(self, modules, label, salt,
                                           length):
        module = modules[label]
        program = compile_bundle(CASES[label][2])
        spec = StimulusSpec.random(length=length, salt=salt)
        instants = spec.materialize(
            _alphabet(module.reactor(engine="efsm")), salt)
        verdicts = {engine: _verdict(module, engine, program, instants)
                    for engine in ENGINES}
        assert verdicts["efsm"] == verdicts["interp"]
        assert verdicts["native"] == verdicts["interp"]


@pytest.mark.parametrize("label", sorted(CASES))
@given(salt=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_efsm_and_native_coverage_bits_agree(modules, label, salt):
    module = modules[label]
    spec = StimulusSpec.random(length=32, salt=salt)
    instants = spec.materialize(
        _alphabet(module.reactor(engine="efsm")), salt)
    bitmaps = {}
    for engine in ("efsm", "native"):
        coverage = CoverageMap.for_efsm(module.efsm())
        reactor = module.reactor(engine=engine)
        reactor.enable_coverage(coverage)
        for instant in instants:
            pure = [name for name, val in instant.items() if val is None]
            valued = {name: val for name, val in instant.items()
                      if val is not None}
            if reactor.react(inputs=pure, values=valued).terminated:
                break
        bitmaps[engine] = coverage
    assert bytes(bitmaps["efsm"].states) == bytes(bitmaps["native"].states)
    assert bytes(bitmaps["efsm"].transitions) == \
        bytes(bitmaps["native"].transitions)
    assert bytes(bitmaps["efsm"].emits) == bytes(bitmaps["native"].emits)
