"""Property-based cross-validation of the two execution engines.

The central invariant of the reproduction (DESIGN.md §7): for any input
trace, the compiled EFSM behaves exactly like the reference kernel
interpreter — and optimization must not change that.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compare_on_trace
from repro.codegen.py_backend import EfsmReactor
from repro.core import EclCompiler
from repro.efsm.optimize import optimize

MODULES = {
    "debounce": """
module m (input pure tick, input pure button, output pure press)
{
    while (1) {
        await (button);
        do {
            await (tick);
            await (tick);
            present (button) { emit (press); }
        } abort (~button);
    }
}
""",
    "counter_guard": """
module m (input pure tick, input pure button, output pure press)
{
    int n;
    n = 0;
    while (1) {
        await (tick | button);
        present (button) { n = 0; } else { n = n + 1; }
        if (n >= 3) {
            emit (press);
            n = 0;
        }
    }
}
""",
    "preemption_nest": """
module m (input pure tick, input pure button, output pure press)
{
    while (1) {
        do {
            par {
                { await (tick); await (tick); emit (press); }
                do { halt (); } abort (tick);
            }
        } suspend (button);
        await ();
    }
}
""",
    "valued_pipeline": """
module m (input pure tick, input pure button, output int press)
{
    int acc;
    acc = 0;
    while (1) {
        await (tick);
        acc = acc * 2 + 1;
        present (button) { emit_v (press, acc); acc = 0; }
    }
}
""",
}


def trace_strategy():
    instant = st.builds(
        lambda tick, button: {name: None for name, present in
                              [("tick", tick), ("button", button)]
                              if present},
        st.booleans(), st.booleans())
    return st.lists(instant, min_size=1, max_size=30)


@pytest.fixture(scope="module")
def compiled():
    designs = {}
    for name, source in MODULES.items():
        module = EclCompiler().compile_text(source).module("m")
        designs[name] = (module.kernel, module.efsm(optimized=False),
                         optimize(module.efsm(optimized=False)))
    return designs


@pytest.mark.parametrize("name", sorted(MODULES))
class TestEngineEquivalence:
    @given(trace=trace_strategy())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_interpreter_matches_raw_efsm(self, compiled, name, trace):
        kernel, raw, _optimized = compiled[name]
        assert compare_on_trace(kernel, raw, trace) is None

    @given(trace=trace_strategy())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_interpreter_matches_optimized_efsm(self, compiled, name,
                                                trace):
        kernel, _raw, optimized = compiled[name]
        assert compare_on_trace(kernel, optimized, trace) is None

    @given(trace=trace_strategy())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_efsm_state_stays_in_range(self, compiled, name, trace):
        _kernel, raw, _optimized = compiled[name]
        reactor = EfsmReactor(raw)
        for step in trace:
            reactor.react(inputs=[n for n in step])
            if reactor.terminated:
                break
            assert 0 <= reactor.state < raw.state_count
