"""Cross-task-engine equivalence of the simulated RTOS.

The multi-task extension of the three-engine property suite: for any
random stimulus, the ``rtos`` farm engine must produce the identical
trace **and** identical kernel statistics whether its tasks run the
compiled-automaton walker (``efsm``), the closure-compiled native
reactors (``native``, slot-indexed fast dispatch) or the reference
interpreter (``interp``) — on multi-task partitions of both Table 1
designs and on the flat product machines (single-task wrap of the
synchronous composition).

Kernel statistics equality is the strong claim: the batched
run-to-completion cascade must schedule, context-switch, post and
self-trigger *identically* regardless of what executes inside a task,
and the slot-indexed carriers must lose exactly the events the classic
event-flag/mailbox services would lose (overwrite semantics included).
"""

import pytest

from repro.designs import AUDIO_BUFFER_ECL, PROTOCOL_STACK_ECL
from repro.farm import SimJob, StimulusSpec, WorkerState
from repro.farm.engines import build_engine

STACK_TASKS = (
    ("assemble", "assemble", 3, (("outpkt", "packet"),)),
    ("prochdr", "prochdr", 2, (("inpkt", "packet"),)),
    ("checkcrc", "checkcrc", 1, (("inpkt", "packet"),)),
)

BUFFER_TASKS = (
    ("sampler", "sampler", 3),
    ("drain", "drain_ctrl", 2),
    ("fifo", "fifo_ctrl", 1),
)

#: (design label, flat module, partition tasks)
PARTITIONS = {
    "stack": ("toplevel", STACK_TASKS),
    "buffer": ("audio_buffer", BUFFER_TASKS),
}

TASK_ENGINES = ("efsm", "native", "interp")


@pytest.fixture(scope="module")
def state():
    return WorkerState({
        "stack": PROTOCOL_STACK_ECL,
        "buffer": AUDIO_BUFFER_ECL,
    })


def run_rtos(state, design, module, tasks, task_engine, salt, length=24):
    job = SimJob(
        design=design,
        module=module,
        engine="rtos",
        stimulus=StimulusSpec.random(length=length, salt=salt),
        index=salt,
        tasks=tasks,
        task_engine=task_engine,
    )
    engine = build_engine("rtos", state.handles(design), job)
    # Seed the stimulus from the *efsm* job identity so every task
    # engine replays the identical instants (task_engine enters the
    # job id by design — it must not change the drawn trace here).
    reference = SimJob(
        design=design,
        module=module,
        engine="rtos",
        stimulus=job.stimulus,
        index=salt,
        tasks=tasks,
    )
    stimulus = job.stimulus.materialize(
        engine.input_alphabet(), reference.seed)
    records = [engine.step(instant) for instant in stimulus]
    stats = engine.kernel_stats()
    per_task = {
        task.name: (task.dispatch_count, task.lost_events())
        for task in engine.kernel.tasks
    }
    return records, stats, per_task, engine


@pytest.mark.parametrize("design", sorted(PARTITIONS))
class TestPartitionedTaskEngines:
    @pytest.mark.parametrize("salt", [0, 1, 2, 3])
    def test_partition_traces_and_stats_agree(self, state, design, salt):
        module, tasks = PARTITIONS[design]
        reference = None
        for task_engine in TASK_ENGINES:
            outcome = run_rtos(state, design, module, tasks,
                               task_engine, salt)
            if reference is None:
                reference = outcome
                continue
            ref_records, ref_stats, ref_tasks, _ = reference
            records, stats, per_task, _ = outcome
            assert records == ref_records, \
                "trace diverged under task engine %r" % task_engine
            assert stats == ref_stats, \
                "kernel stats diverged under task engine %r" % task_engine
            assert per_task == ref_tasks

    @pytest.mark.parametrize("salt", [0, 5])
    def test_flat_product_machine_agrees(self, state, design, salt):
        """The flat product machine (single task wrapping the
        synchronous composition) under every task engine."""
        module, _tasks = PARTITIONS[design]
        outcomes = [
            run_rtos(state, design, module, (), task_engine, salt)
            for task_engine in TASK_ENGINES
        ]
        for other in outcomes[1:]:
            assert other[0] == outcomes[0][0]
            assert other[1] == outcomes[0][1]

    def test_native_tasks_use_fast_path(self, state, design, salt=0):
        module, tasks = PARTITIONS[design]
        _r, _s, _t, engine = run_rtos(state, design, module, tasks,
                                      "native", salt)
        assert all(task.uses_native_path for task in engine.kernel.tasks)
        _r, _s, _t, engine = run_rtos(state, design, module, tasks,
                                      "efsm", salt)
        assert not any(task.uses_native_path for task in engine.kernel.tasks)


class TestLostEventSemantics:
    """Slot-indexed carriers must lose exactly what mailboxes lose."""

    DESIGN = """
module slowpoke (input pure go, input int data, output int total)
{
    int acc;
    acc = 0;
    while (1) {
        await (go);
        acc = acc + data;
        emit_v (total, acc);
    }
}
"""

    def _engine(self, task_engine):
        state = WorkerState({"d": self.DESIGN})
        job = SimJob(design="d", module="slowpoke", engine="rtos",
                     stimulus=StimulusSpec.explicit([]), index=0,
                     task_engine=task_engine)
        return build_engine("rtos", state.handles("d"), job)

    @pytest.mark.parametrize("task_engine", TASK_ENGINES)
    def test_mailbox_overwrite_counts_lost(self, task_engine):
        engine = self._engine(task_engine)
        kernel = engine.kernel
        task = kernel.tasks[0]
        # Two values before any dispatch: the first is overwritten.
        task.deliver("data", 7)
        task.deliver("data", 9)
        # Two pure events: the second is lost (latched flag).
        task.deliver("go", None)
        task.deliver("go", None)
        out = kernel.run_until_idle()
        assert out == {"total": 9}
        assert task.lost_events() == 2
        assert kernel.total_lost_events() == 2
        view = task.carrier("data")
        assert view.post_count == 2 and view.lost_count == 1

    @pytest.mark.parametrize("task_engine", ["efsm", "native"])
    def test_value_none_is_presence_only(self, task_engine):
        engine = self._engine(task_engine)
        kernel = engine.kernel
        kernel.post_input("data", 5)
        kernel.post_input("go")
        assert kernel.run_until_idle() == {"total": 5}
        # A bare presence on the valued input keeps the old value.
        kernel.post_input("data")
        kernel.post_input("go")
        assert kernel.run_until_idle() == {"total": 10}
