"""Property-style equivalence of the vector engine against all three
scalar engines.

The vector engine's contract is *bit-exactness*: lane ``i`` of an
``n``-instance sweep must reproduce the scalar native engine's trace
for the same derived seed byte for byte — records, termination,
coverage bitmaps, monitor verdicts.  This suite holds it to that over
the example designs plus a data-heavy "torture" module (signed
arithmetic, division on negatives, variable shifts, casts, array
reads/writes), at sweep widths 1, 7 and 256, standalone and through
the farm worker's fused-sweep path, and inside a verify campaign.
"""

import pytest

from repro.designs import (AUDIO_BUFFER_ECL, DOOR_CTRL_BUGGY_ECL,
                           DOOR_CTRL_ECL, PROTOCOL_STACK_ECL)
from repro.engines import derive_spec_seed, get_engine
from repro.farm import SimJob, SimulationFarm, StimulusSpec, WorkerState
from repro.pipeline import Pipeline
from repro.verify import VerifyCampaign, never, present
from repro.verify.coverage import CoverageMap

pytest.importorskip("numpy")

TORTURE_ECL = """
typedef unsigned char byte;

module torture (input pure reset, input byte x, input int y,
                output int acc, output bool flag, output byte mix)
{
    int total;
    short s;
    unsigned int u;
    byte buf[8];
    int i;

    while (1) {
        await (x);
        total += x;
        s = s + (x << 3) - y;
        u = (u ^ (x * 2654435761)) >> (x & 3);
        for (i = 0; i < 8; i++) {
            buf[i] = (buf[i] + x + i) % 251;
        }
        {
            int k = (x > 128) ? (x - y) : (x + y);
            total = total + k / ((x & 7) + 1);
        }
        if ((total % 5) == 0) {
            total = -total / 3;
        }
        emit_v (acc, total);
        emit_v (flag, (total > 0) && (s != 0));
        emit_v (mix, (byte)(u ^ total) + buf[x & 7]);
    }
}
"""

#: label -> (source, module under test)
DESIGNS = {
    "stack": (PROTOCOL_STACK_ECL, "toplevel"),
    "buffer": (AUDIO_BUFFER_ECL, "audio_buffer"),
    "door": (DOOR_CTRL_ECL, "door_ctrl"),
    "torture": (TORTURE_ECL, "torture"),
}

_HANDLES = {}


def handle_for(label):
    handle = _HANDLES.get(label)
    if handle is None:
        source, module = DESIGNS[label]
        build = Pipeline().compile_text(source, filename=label)
        handle = _HANDLES[label] = build.module(module)
    return handle


def outcome_fields(outcome):
    return (outcome.instants, outcome.terminated, outcome.emitted_events,
            outcome.errors, outcome.records,
            [cov.as_payload() for cov in outcome.coverage])


@pytest.mark.parametrize("label", sorted(DESIGNS))
@pytest.mark.parametrize("n_instances", [1, 7])
def test_sweep_matches_every_scalar_engine(label, n_instances):
    handle = handle_for(label)
    spec = StimulusSpec.random(length=32, salt=17)
    sweep = get_engine("vector").run_spec(
        handle, spec, n_instances=n_instances, coverage=True, records=True)
    for name in ("native", "efsm", "interp"):
        scalar = get_engine(name).run_spec(
            handle, spec, n_instances=n_instances, coverage=True)
        assert scalar.records == sweep.records, (label, name)
        assert scalar.instants == sweep.instants, (label, name)
        assert scalar.terminated == sweep.terminated, (label, name)
        assert scalar.emitted_events == sweep.emitted_events, (label, name)
        if name == "interp":
            continue  # no EFSM states: emit marks only
        for lane in range(n_instances):
            assert (scalar.coverage[lane].as_payload()
                    == sweep.coverage[lane].as_payload()), (label, name, lane)


def test_wide_sweep_matches_native_on_torture():
    handle = handle_for("torture")
    spec = StimulusSpec.random(length=48, present_prob=0.7)
    sweep = get_engine("vector").run_spec(
        handle, spec, n_instances=256, coverage=True, records=True)
    scalar = get_engine("native").run_spec(
        handle, spec, n_instances=256, coverage=True)
    assert outcome_fields(scalar) == outcome_fields(sweep)
    # Merged coverage across all lanes agrees too.
    merged_scalar = CoverageMap.for_efsm(handle.efsm())
    merged_sweep = CoverageMap.for_efsm(handle.efsm())
    for lane in range(256):
        merged_scalar.merge(scalar.coverage[lane])
        merged_sweep.merge(sweep.coverage[lane])
    assert merged_scalar.as_payload() == merged_sweep.as_payload()


def test_sweep_is_deterministic_and_seed_derived():
    handle = handle_for("torture")
    spec = StimulusSpec.random(length=20, salt=9)
    first = get_engine("vector").run_spec(handle, spec, n_instances=16,
                                          records=True)
    second = get_engine("vector").run_spec(
        handle, spec,
        seeds=[derive_spec_seed(spec, i) for i in range(16)],
        records=True)
    assert first.records == second.records
    assert first.instants == second.instants


def test_farm_fuses_vector_jobs_identically():
    """Vector jobs through the farm (fused into one sweep per group)
    produce the same rows a scalar native driver produces for the same
    per-job seeds — coverage payloads included."""
    designs = {label: source for label, (source, _m) in DESIGNS.items()}
    jobs = []
    for position, label in enumerate(sorted(DESIGNS)):
        _source, module = DESIGNS[label]
        for replica in range(5):
            jobs.append(SimJob(
                design=label, module=module, engine="vector",
                stimulus=StimulusSpec.random(length=24, salt=3),
                index=len(jobs), collect_coverage=True))
    report = SimulationFarm(designs, workers=1).run(jobs)
    assert report.ok
    state = WorkerState(designs)
    for job, row in zip(jobs, report.results):
        scalar = get_engine("native").build(state.handles(job.design), job)
        cov = CoverageMap.for_efsm(state.build(job.design)
                                   .module(job.module).efsm())
        scalar.enable_coverage(cov)
        records = scalar.run_spec(job)
        assert row.instants == len(records)
        assert row.emitted_events == sum(
            len(record["emitted"]) for record in records)
        assert row.coverage == cov.as_payload()


def test_campaign_on_vector_engine_finds_the_bug():
    campaign = VerifyCampaign(
        {"door": DOOR_CTRL_BUGGY_ECL},
        "door",
        "door_ctrl",
        engine="vector",
        properties=[never(present("door_open") & present("motor_on"))],
        rounds=4,
        jobs_per_round=64,
        length=48,
        workers=1,
        salt=2024,
    )
    result = campaign.run()
    assert result.violations, "vector campaign missed the seeded bug"
    assert result.violations[0].stimulus  # minimized witness replays


def test_campaign_vector_absorb_matches_scalar_absorb():
    """The numpy prefix-OR coverage admission is decision-identical to
    the per-row adds_to/merge loop: same corpus, same coverage, same
    violations, on both the native and the vector engine."""
    def run(engine, force_scalar):
        campaign = VerifyCampaign(
            {"door": DOOR_CTRL_ECL}, "door", "door_ctrl",
            engine=engine, rounds=3, jobs_per_round=12, length=16,
            workers=1, salt=5, target=200.0)  # unreachable: run all rounds
        if force_scalar:
            campaign._admit_coverage = lambda rows, merged: None
        outcome = campaign.run().as_dict()
        outcome.pop("elapsed")
        return outcome

    for engine in ("native", "vector"):
        assert run(engine, True) == run(engine, False), engine
