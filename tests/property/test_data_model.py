"""Property-based tests for the C data model (hypothesis).

Invariants of the byte-accurate layout engine and the evaluator's
C arithmetic, checked on randomly generated types and values.
"""

from hypothesis import given, strategies as st

from repro.lang.types import (
    ArrayType,
    BOOL,
    CHAR,
    INT,
    SHORT,
    StructType,
    UCHAR,
    UINT,
    UnionType,
    USHORT,
)
from repro.runtime import AddressSpace, Variable
from repro.runtime.memory import decode_scalar, encode_scalar

SCALARS = st.sampled_from([CHAR, UCHAR, SHORT, USHORT, INT, UINT, BOOL])


@st.composite
def member_types(draw, depth=0):
    base = draw(SCALARS)
    if depth >= 2:
        return base
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return base
    if kind == 1:
        return ArrayType(base, draw(st.integers(1, 8)))
    members = draw(st.lists(member_types(depth=depth + 1),
                            min_size=1, max_size=4))
    named = [("f%d" % i, t) for i, t in enumerate(members)]
    if kind == 2:
        return StructType.build("s", named)
    return UnionType.build("u", named)


class TestLayoutInvariants:
    @given(member_types())
    def test_size_is_multiple_of_alignment(self, ctype):
        assert ctype.size % ctype.align == 0

    @given(st.lists(member_types(), min_size=1, max_size=6))
    def test_struct_members_do_not_overlap(self, members):
        struct = StructType.build("s", [("m%d" % i, t)
                                        for i, t in enumerate(members)])
        spans = sorted((f.offset, f.offset + f.type.size)
                       for f in struct.fields)
        for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= start_b

    @given(st.lists(member_types(), min_size=1, max_size=6))
    def test_struct_members_aligned(self, members):
        struct = StructType.build("s", [("m%d" % i, t)
                                        for i, t in enumerate(members)])
        for field in struct.fields:
            assert field.offset % field.type.align == 0

    @given(st.lists(member_types(), min_size=1, max_size=6))
    def test_struct_size_covers_members(self, members):
        struct = StructType.build("s", [("m%d" % i, t)
                                        for i, t in enumerate(members)])
        end = max(f.offset + f.type.size for f in struct.fields)
        assert struct.size >= end

    @given(st.lists(member_types(), min_size=1, max_size=6))
    def test_union_size_is_max(self, members):
        union = UnionType.build("u", [("m%d" % i, t)
                                      for i, t in enumerate(members)])
        assert union.size >= max(t.size for t in members)
        assert all(f.offset == 0 for f in union.fields)


class TestScalarRoundTrip:
    @given(SCALARS, st.integers(-2**40, 2**40))
    def test_encode_decode_is_wrap(self, ctype, value):
        raw = encode_scalar(value, ctype)
        assert len(raw) == ctype.size
        assert decode_scalar(raw, ctype) == ctype.wrap(value)

    @given(SCALARS, st.integers(-2**40, 2**40))
    def test_wrap_idempotent(self, ctype, value):
        assert ctype.wrap(ctype.wrap(value)) == ctype.wrap(value)

    @given(st.integers(-2**40, 2**40))
    def test_wrap_range(self, value):
        for ctype in (CHAR, UCHAR, SHORT, USHORT, INT, UINT):
            wrapped = ctype.wrap(value)
            assert ctype.min_value <= wrapped <= ctype.max_value


class TestMemoryInvariants:
    @given(st.lists(st.tuples(SCALARS, st.integers(-2**33, 2**33)),
                    min_size=1, max_size=10))
    def test_disjoint_variables_do_not_interfere(self, assignments):
        space = AddressSpace()
        variables = []
        for index, (ctype, value) in enumerate(assignments):
            var = Variable("v%d" % index, ctype, space)
            var.store(value)
            variables.append((var, ctype.wrap(value)))
        # Every variable still holds its own (wrapped) value.
        for var, expected in variables:
            assert var.load() == expected

    @given(st.binary(min_size=1, max_size=64))
    def test_union_views_alias(self, raw):
        space = AddressSpace()
        length = len(raw)
        union = UnionType.build("u", [
            ("bytes", ArrayType(UCHAR, length)),
            ("view", ArrayType(UCHAR, length)),
        ])
        var = Variable("u", union, space)
        byte_view = var.lvalue.field("bytes")
        for index, value in enumerate(raw):
            byte_view.element(index).store(value)
        other = var.lvalue.field("view")
        assert [other.element(i).load() for i in range(length)] == list(raw)

    @given(st.integers(1, 64), st.integers(1, 8))
    def test_snapshot_restore_roundtrip(self, size, align):
        space = AddressSpace()
        address = space.alloc(size, align)
        space.write_bytes(address, bytes(range(size % 256)) [:size])
        before = space.read_bytes(address, size)
        snapshot = space.snapshot()
        space.write_bytes(address, b"\xff" * size)
        space.restore(snapshot)
        assert space.read_bytes(address, size) == before
