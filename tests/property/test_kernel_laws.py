"""Property-based algebraic laws of the Esterel kernel semantics.

Random kernel terms are generated from a small combinator pool (pure
signals only, loops always guarded by a pause so they cannot be
instantaneous) and run on random input traces.  The laws:

* ``seq(nothing, p)`` is equivalent to ``p``;
* ``par`` is commutative for branches over disjoint signals;
* ``loop(seq(p, pause))`` never terminates;
* abort with an always-absent condition is transparent;
* suspend with an always-absent condition is transparent.
"""

from hypothesis import given, settings, strategies as st

from repro.esterel import KernelRunner, kernel as k
from repro.lang import PURE, ast
from repro.runtime import Env, SignalSlot, SignalTable

INPUTS_A = ["i0", "i1"]
OUTPUTS_A = ["oa0", "oa1"]
OUTPUTS_B = ["ob0", "ob1"]


def term_strategy(outputs, depth=2):
    """Kernel terms emitting only ``outputs``, testing only INPUTS_A."""
    leaf = st.one_of(
        st.just(k.NOTHING),
        st.just(k.Pause()),
        st.sampled_from([k.Emit(name) for name in outputs]),
        st.sampled_from([k.Await(ast.SigRef(name=name))
                         for name in INPUTS_A]),
    )
    if depth == 0:
        return leaf
    sub = term_strategy(outputs, depth - 1)

    def present(cond_name, then, otherwise):
        return k.Present(ast.SigRef(name=cond_name), then, otherwise)

    return st.one_of(
        leaf,
        st.builds(lambda a, b: k.seq(a, b), sub, sub),
        st.builds(present, st.sampled_from(INPUTS_A), sub, sub),
        st.builds(lambda body: k.Loop(k.seq(body, k.Pause())), sub),
        st.builds(lambda body, cond: k.Abort(body, ast.SigRef(name=cond)),
                  sub, st.sampled_from(INPUTS_A)),
    )


def trace_strategy():
    instant = st.sets(st.sampled_from(INPUTS_A), max_size=2)
    return st.lists(instant, min_size=1, max_size=12)


def run_trace(stmt, trace, outputs):
    env = Env()
    table = SignalTable()
    for name in INPUTS_A:
        table.add(SignalSlot(name, PURE, env.space, "input"))
    for name in outputs:
        table.add(SignalSlot(name, PURE, env.space, "output"))
    runner = KernelRunner(stmt, table, env)
    history = []
    for inputs in trace:
        result = runner.step(inputs=inputs)
        history.append((frozenset(result.emitted), result.terminated))
        if result.terminated:
            break
    return history


class TestKernelLaws:
    @given(term_strategy(OUTPUTS_A), trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_nothing_is_seq_identity(self, term, trace):
        plain = run_trace(term, trace, OUTPUTS_A)
        padded = run_trace(k.seq(k.NOTHING, term, k.NOTHING), trace,
                           OUTPUTS_A)
        assert plain == padded

    @given(term_strategy(OUTPUTS_A), term_strategy(OUTPUTS_B),
           trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_par_commutative_for_disjoint_branches(self, left, right,
                                                   trace):
        outputs = OUTPUTS_A + OUTPUTS_B
        forward = run_trace(k.par(left, right), trace, outputs)
        backward = run_trace(k.par(right, left), trace, outputs)
        assert forward == backward

    @given(term_strategy(OUTPUTS_A), trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_guarded_loop_never_terminates(self, body, trace):
        history = run_trace(k.Loop(k.seq(body, k.Pause())), trace,
                            OUTPUTS_A)
        assert all(not terminated for _e, terminated in history)

    @given(term_strategy(OUTPUTS_A), trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_abort_on_dead_signal_transparent(self, term, trace):
        # 'i1' never occurs in the filtered trace.
        filtered = [instant - {"i1"} for instant in trace]
        plain = run_trace(term, filtered, OUTPUTS_A)
        aborted = run_trace(k.Abort(term, ast.SigRef(name="i1")),
                            filtered, OUTPUTS_A)
        assert plain == aborted

    @given(term_strategy(OUTPUTS_A), trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_suspend_on_dead_signal_transparent(self, term, trace):
        filtered = [instant - {"i1"} for instant in trace]
        plain = run_trace(term, filtered, OUTPUTS_A)
        suspended = run_trace(k.Suspend(term, ast.SigRef(name="i1")),
                              filtered, OUTPUTS_A)
        assert plain == suspended

    @given(term_strategy(OUTPUTS_A), trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_determinism_same_trace_same_history(self, term, trace):
        first = run_trace(term, trace, OUTPUTS_A)
        second = run_trace(term, trace, OUTPUTS_A)
        assert first == second

    @given(term_strategy(OUTPUTS_A), trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_emissions_only_from_output_pool(self, term, trace):
        for emitted, _terminated in run_trace(term, trace, OUTPUTS_A):
            assert emitted <= set(OUTPUTS_A)
