"""Property-style equivalence of the native engine against both
reference engines.

Random stimulus drives ``interp`` (kernel interpreter), ``efsm``
(decision-tree walker) and ``native`` (closure-compiled reactions) in
lockstep over the example designs; every instant must agree on emitted
signals, carried values and termination.  A data-heavy "torture"
module stresses the lowerer's C subset — signed arithmetic, division
and remainder on negatives, variable shifts, casts, ternaries, block
locals, loops and array reads/writes — so a lowering bug cannot hide
behind simple designs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.designs import AUDIO_BUFFER_ECL, PROTOCOL_STACK_ECL
from repro.farm import StimulusSpec
from repro.pipeline import Pipeline
from repro.runtime.native import compile_native

DEBOUNCE_ECL = """
module debounce (input pure tick, input pure button,
                 output pure press)
{
    while (1) {
        await (button);
        do {
            await (tick);
            await (tick);
            present (button) { emit (press); }
        } abort (~button);
    }
}
"""

TORTURE_ECL = """
typedef unsigned char byte;

module torture (input pure reset, input byte x, input int y,
                output int acc, output bool flag, output byte mix)
{
    int total;
    short s;
    unsigned int u;
    byte buf[8];
    int i;

    while (1) {
        await (x);
        total += x;
        s = s + (x << 3) - y;
        u = (u ^ (x * 2654435761)) >> (x & 3);
        for (i = 0; i < 8; i++) {
            buf[i] = (buf[i] + x + i) % 251;
        }
        {
            int k = (x > 128) ? (x - y) : (x + y);
            total = total + k / ((x & 7) + 1);
        }
        if ((total % 5) == 0) {
            total = -total / 3;
        }
        emit_v (acc, total);
        emit_v (flag, (total > 0) && (s != 0));
        emit_v (mix, (byte)(u ^ total) + buf[x & 7]);
    }
}
"""

#: label -> (source, module under test)
DESIGNS = {
    "stack": (PROTOCOL_STACK_ECL, "toplevel"),
    "buffer": (AUDIO_BUFFER_ECL, "audio_buffer"),
    "debounce": (DEBOUNCE_ECL, "debounce"),
    "torture": (TORTURE_ECL, "torture"),
}

ENGINES = ("interp", "efsm", "native")


@pytest.fixture(scope="module")
def modules():
    """Each design compiles once; examples bind fresh reactors."""
    pipeline = Pipeline()
    handles = {}
    for label, (source, module) in DESIGNS.items():
        build = pipeline.compile_text(source, filename=label + ".ecl")
        handles[label] = build.module(module)
    return handles


def _alphabet(reactor):
    return [(slot.name, slot.is_pure)
            for slot in reactor.signals.inputs()
            if slot.is_pure or slot.type.is_scalar()]


def _drive_lockstep(module, instants):
    reactors = [module.reactor(engine=engine) for engine in ENGINES]
    for number, instant in enumerate(instants):
        pure = [name for name, value in instant.items() if value is None]
        valued = {name: value for name, value in instant.items()
                  if value is not None}
        outputs = [r.react(inputs=pure, values=valued) for r in reactors]
        reference = outputs[0]
        for engine, output in zip(ENGINES[1:], outputs[1:]):
            assert output.emitted == reference.emitted, (
                "instant %d: %s emitted %r, interp %r"
                % (number, engine, output.emitted, reference.emitted))
            assert output.values == reference.values, (
                "instant %d: %s values %r, interp %r"
                % (number, engine, output.values, reference.values))
            assert output.terminated == reference.terminated, (
                "instant %d: %s terminated %r, interp %r"
                % (number, engine, output.terminated,
                   reference.terminated))
        if reference.terminated:
            break


@pytest.mark.parametrize("label", sorted(DESIGNS))
class TestNativeEquivalence:
    @given(salt=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_three_engines_agree_on_random_stimulus(self, modules, label,
                                                    salt, length):
        module = modules[label]
        spec = StimulusSpec.random(length=length, salt=salt)
        alphabet = _alphabet(module.reactor(engine="efsm"))
        instants = spec.materialize(alphabet, salt)
        _drive_lockstep(module, instants)


@pytest.mark.parametrize("label", sorted(DESIGNS))
def test_react_many_matches_sequential_react(modules, label):
    """The batched-instant loop is observably identical to one react()
    call per instant."""
    module = modules[label]
    spec = StimulusSpec.random(length=64, salt=1234)
    alphabet = _alphabet(module.reactor(engine="efsm"))
    instants = spec.materialize(alphabet, 99)
    sequential = module.reactor(engine="native")
    batched = module.reactor(engine="native")
    expected = []
    for instant in instants:
        pure = [name for name, value in instant.items() if value is None]
        valued = {name: value for name, value in instant.items()
                  if value is not None}
        output = sequential.react(inputs=pure, values=valued)
        expected.append(output)
        if output.terminated:
            break
    actual = batched.react_many(instants)
    assert len(actual) == len(expected)
    for left, right in zip(expected, actual):
        assert left.emitted == right.emitted
        assert left.values == right.values
        assert left.terminated == right.terminated
    assert sequential.state == batched.state
    assert sequential.terminated == batched.terminated


def test_lowerer_covers_the_example_designs(modules):
    """Coverage guard: every example design must lower completely —
    a fallback appearing here means the native subset regressed.
    The stack's aggregate packet emits used to be evaluator residue;
    they now lower as bytearray slice moves."""
    for label in sorted(DESIGNS):
        code = compile_native(modules[label].efsm())
        assert code.fallback_ops == 0, (
            "%s fell back: %s" % (label, code.describe()))
