"""Property-style cross-engine checking through the farm.

Random stimulus is driven through ``Reactor`` (interpreter),
``EfsmReactor`` (compiled automaton) and ``NativeReactor``
(closure-compiled reactions) via the farm's opt-in *equivalence* job
mode — the mode runs the interpreter in lockstep with both compiled
engines — on the example designs: the paper's protocol stack, the
audio buffer controller, and a debounce controller.  Any observable
mismatch surfaces as a job with ``status="diverged"`` carrying the
offending instant and the diverging engine, which is exactly the
report shape a verification campaign would triage.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.designs import AUDIO_BUFFER_ECL, PROTOCOL_STACK_ECL
from repro.farm import SimJob, SimulationFarm, StimulusSpec, WorkerState

DEBOUNCE_ECL = """
module debounce (input pure tick, input pure button,
                 output pure press)
{
    while (1) {
        await (button);
        do {
            await (tick);
            await (tick);
            present (button) { emit (press); }
        } abort (~button);
    }
}
"""

#: label -> (source, module under test)
DESIGNS = {
    "stack": (PROTOCOL_STACK_ECL, "toplevel"),
    "buffer": (AUDIO_BUFFER_ECL, "audio_buffer"),
    "debounce": (DEBOUNCE_ECL, "debounce"),
}


@pytest.fixture(scope="module")
def state():
    """One worker-state for the whole module: each design compiles
    once, every hypothesis example reuses the cached EFSM."""
    return WorkerState({label: source
                        for label, (source, _) in DESIGNS.items()})


@pytest.mark.parametrize("label", sorted(DESIGNS))
class TestFarmEquivalence:
    @given(salt=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=1, max_value=40))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_engines_agree_on_random_stimulus(self, state, label, salt,
                                              length):
        _source, module = DESIGNS[label]
        job = SimJob(design=label, module=module, engine="equivalence",
                     stimulus=StimulusSpec.random(length=length,
                                                  salt=salt))
        result = state.run_job(job)
        assert result.status in ("ok", "terminated"), (
            result.divergence or result.error)
        assert result.divergence is None


def test_batch_equivalence_report_lists_divergences_empty():
    """A whole equivalence batch over all three designs reports a clean
    divergence list (the FarmReport surface a campaign would gate on)."""
    farm = SimulationFarm({label: source
                           for label, (source, _) in DESIGNS.items()},
                          workers=1)
    jobs = [SimJob(design=label, module=module, engine="equivalence",
                   stimulus=StimulusSpec.random(length=24), index=i)
            for i, (label, (_, module))
            in enumerate(sorted(DESIGNS.items()))]
    report = farm.run(jobs)
    assert report.ok
    assert report.divergences == []
