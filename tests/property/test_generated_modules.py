"""Property tests over randomly *generated* ECL modules.

A hypothesis strategy builds well-formed reactive modules (loops always
pause, only declared signals are referenced, single writer per parallel
signal).  For every generated module:

* printing and re-parsing is a fixed point (printer/parser agreement);
* the full pipeline (split, translate, EFSM) runs without internal
  errors;
* the compiled automaton matches the reference interpreter on random
  input traces — the reproduction's core invariant, exercised far from
  the hand-written designs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compare_on_trace
from repro.core import EclCompiler
from repro.errors import EclError
from repro.lang import parse_text, to_text

INPUTS = ["i0", "i1", "i2"]
OUTPUTS = ["o0", "o1"]


@st.composite
def reactive_statements(draw, outputs, depth):
    """One well-formed reactive statement using the fixed interface."""
    choices = ["emit", "await", "awaitdelta", "halt"]
    if depth > 0:
        choices += ["present", "abort", "suspend", "seq", "loop", "ifvar"]
    kind = draw(st.sampled_from(choices))
    if kind == "emit":
        return "emit (%s);" % draw(st.sampled_from(outputs))
    if kind == "await":
        return "await (%s);" % draw(_sig_expr(draw))
    if kind == "awaitdelta":
        return "await ();"
    if kind == "halt":
        return "halt ();"
    sub = reactive_statements(outputs, depth - 1)
    if kind == "present":
        then = draw(sub)
        otherwise = draw(sub)
        return "present (%s) { %s } else { %s }" % (
            draw(_sig_expr(draw)), then, otherwise)
    if kind == "abort":
        body = draw(sub)
        weak = draw(st.booleans())
        keyword = "weak_abort" if weak else "abort"
        return "do { %s } %s (%s);" % (body, keyword, draw(_sig_expr(draw)))
    if kind == "suspend":
        return "do { %s } suspend (%s);" % (draw(sub),
                                            draw(_sig_expr(draw)))
    if kind == "seq":
        return "%s %s" % (draw(sub), draw(sub))
    if kind == "loop":
        # Loops always pause: body ends with await so the translation
        # can never be instantaneous.
        return "while (1) { %s await (%s); }" % (
            draw(sub), draw(st.sampled_from(INPUTS)))
    if kind == "ifvar":
        return ("n = n + 1; if (n %% 3 == %d) { %s } else { %s }"
                % (draw(st.integers(0, 2)), draw(sub), draw(sub)))
    raise AssertionError(kind)


def _sig_expr(draw):
    atoms = st.sampled_from(INPUTS)
    return st.one_of(
        atoms,
        st.builds(lambda a: "~%s" % a, atoms),
        st.builds(lambda a, b: "%s & %s" % (a, b), atoms, atoms),
        st.builds(lambda a, b: "%s | %s" % (a, b), atoms, atoms),
    )


@st.composite
def module_sources(draw):
    body = draw(reactive_statements(OUTPUTS, depth=3))
    params = ", ".join(["input pure %s" % name for name in INPUTS]
                       + ["output pure %s" % name for name in OUTPUTS])
    return ("module gen (%s)\n{\n    int n;\n    n = 0;\n    %s\n}\n"
            % (params, body))


def trace_strategy():
    instant = st.sets(st.sampled_from(INPUTS), max_size=3)
    return st.lists(instant, min_size=1, max_size=16)


class TestGeneratedModules:
    @given(source=module_sources())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_fixed_point(self, source):
        program, _ = parse_text(source)
        printed = to_text(program)
        reparsed, _ = parse_text(printed)
        assert to_text(reparsed) == printed

    @given(source=module_sources())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_pipeline_never_crashes_internally(self, source):
        try:
            design = EclCompiler().compile_text(source)
            design.module("gen").efsm()
        except EclError:
            # Library-defined rejections (causality, state budget, ...)
            # are legitimate outcomes; anything else is a bug.
            pass

    @given(source=module_sources(), trace=trace_strategy())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_engines_agree_on_generated_module(self, source, trace):
        try:
            design = EclCompiler().compile_text(source)
            module = design.module("gen")
            efsm = module.efsm()
        except EclError:
            return  # legitimately rejected program
        trace_dicts = [{name: None for name in instant}
                       for instant in trace]
        mismatch = compare_on_trace(module.kernel, efsm, trace_dicts)
        assert mismatch is None, "\n%s\n%s" % (source,
                                               mismatch.describe())
