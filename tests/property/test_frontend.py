"""Property-based tests for the lexer and preprocessor."""

from hypothesis import given, settings, strategies as st

from repro.lang import TokenKind, preprocess, tokenize

IDENT = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True)
NUMBER = st.integers(0, 2**31 - 1)


class TestLexerRoundTrip:
    @given(st.lists(st.one_of(IDENT, NUMBER), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_space_separated_tokens_roundtrip(self, items):
        text = " ".join(str(item) for item in items)
        tokens = tokenize(text)
        assert tokens[-1].kind is TokenKind.EOF
        values = [t.value for t in tokens[:-1]]
        assert len(values) == len(items)
        for item, value in zip(items, values):
            assert value == item or str(value) == str(item)

    @given(NUMBER)
    @settings(max_examples=100, deadline=None)
    def test_decimal_literals_exact(self, number):
        token = tokenize(str(number))[0]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.value == number

    @given(NUMBER)
    @settings(max_examples=100, deadline=None)
    def test_hex_literals_exact(self, number):
        token = tokenize(hex(number))[0]
        assert token.value == number

    @given(st.text(alphabet="abcdefXYZ 0123456789+-*/%&|^~!<>=(){}[];,.",
                   max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_lexer_terminates_on_arbitrary_soup(self, text):
        # Must either tokenize or raise LexError — never hang, never
        # return junk kinds.
        from repro.errors import LexError
        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind is TokenKind.EOF
        assert all(isinstance(t.kind, TokenKind) for t in tokens)

    @given(st.lists(IDENT, min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_spans_are_ordered(self, names):
        text = "\n".join(names)
        tokens = tokenize(text)
        lines = [t.span.start.line for t in tokens[:-1]]
        assert lines == sorted(lines)


class TestPreprocessorProperties:
    @given(IDENT, NUMBER)
    @settings(max_examples=100, deadline=None)
    def test_define_then_use(self, name, value):
        out = preprocess("#define %s %d\nx = %s;" % (name, value, name))
        assert str(value) in out

    @given(st.text(alphabet="abcdef ();+*", max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_no_macros_means_identity_lines(self, body):
        line = body.replace("\n", " ")
        out = preprocess(line)
        assert out == line

    @given(IDENT, NUMBER)
    @settings(max_examples=100, deadline=None)
    def test_expansion_idempotent(self, name, value):
        source = "#define %s %d\ny = %s + %s;" % (name, value, name, name)
        once = preprocess(source)
        again = preprocess(once)
        assert preprocess(again) == again

    @given(IDENT, NUMBER)
    @settings(max_examples=100, deadline=None)
    def test_strings_never_touched(self, name, value):
        out = preprocess('#define %s %d\ns = "%s";' % (name, value, name))
        assert '"%s"' % name in out
