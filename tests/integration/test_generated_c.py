"""Gold-standard back-end validation: compile the generated C with gcc
and run it against the Python automaton on the same stimulus.

This is the paper's actual deployment path (phase 3 produces C for the
target); here the host compiler stands in for the cross toolchain.
Aggregate-valued outputs are compared by presence; scalar outputs by
value.  Modules relying on the aggregate-to-integer cast extension are
excluded (C pointer-decay semantics differ; see DESIGN.md §4).
"""

import shutil
import subprocess

import pytest

from repro.core import EclCompiler
from repro.lang.types import PureType

gcc = shutil.which("gcc") or shutil.which("cc")
pytestmark = pytest.mark.skipif(gcc is None,
                                reason="no C compiler available")

COUNTER = """
module counter (input pure tick, input pure clear, output int value)
{
    int n;
    n = 0;
    while (1) {
        await (tick | clear);
        present (clear) { n = 0; } else { n = n + 1; }
        emit_v (value, n);
    }
}
"""

CROSSING = """
module crossing (input pure tick, input pure request,
                 output pure cars_green, output pure cars_red)
{
    while (1) {
        do {
            while (1) { emit (cars_green); await (tick); }
        } abort (request);
        emit (cars_red);
        await (tick);
        emit (cars_red);
        await (tick);
    }
}
"""

FIFO = """
#define DEPTH 4
typedef unsigned char byte;
module fifo (input byte push, input pure pop, output byte head,
             output int level_out)
{
    byte buf[DEPTH];
    int head_i;
    int tail_i;
    int level;
    head_i = 0; tail_i = 0; level = 0;
    while (1) {
        await (push | pop);
        present (push) {
            if (level < DEPTH) {
                buf[tail_i] = push;
                tail_i = (tail_i + 1) % DEPTH;
                level = level + 1;
            }
        }
        present (pop) {
            if (level > 0) {
                emit_v (head, buf[head_i]);
                head_i = (head_i + 1) % DEPTH;
                level = level - 1;
            }
        }
        emit_v (level_out, level);
    }
}
"""


def _scalar_outputs(module):
    return [p for p in module.kernel.output_params
            if not isinstance(p.type, PureType)
            and p.type.is_scalar()]


def _pure_outputs(module):
    return [p for p in module.kernel.output_params
            if isinstance(p.type, PureType)]


def _main_c(module, trace):
    """A C harness feeding ``trace`` and printing boundary activity."""
    name = module.name
    lines = [
        "#include <stdio.h>",
        '#include "%s.h"' % name,
        "static %s_ctx_t ctx;" % name,
        "int main(void) {",
        "    %s_reset(&ctx);" % name,
    ]
    for instant, step in enumerate(trace):
        for signal, value in step.items():
            lines.append("    ctx.%s_present = 1;" % signal)
            if value is not None:
                lines.append("    ctx.%s_value = %d;" % (signal, value))
        lines.append("    %s_react(&ctx);" % name)
        for param in _pure_outputs(module):
            lines.append(
                '    if (ctx.%s_present) printf("%d %s\\n");'
                % (param.name, instant, param.name))
        for param in _scalar_outputs(module):
            lines.append(
                '    if (ctx.%s_present) printf("%d %s=%%ld\\n", '
                "(long) ctx.%s_value);"
                % (param.name, instant, param.name, param.name))
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _python_reference(module, trace):
    reactor = module.reactor()
    events = []
    for instant, step in enumerate(trace):
        pure = [n for n, v in step.items() if v is None]
        valued = {n: v for n, v in step.items() if v is not None}
        out = reactor.react(inputs=pure, values=valued)
        for name in sorted(out.emitted):
            if name in out.values and isinstance(out.values[name], int):
                events.append("%d %s=%d" % (instant, name,
                                            out.values[name]))
            else:
                events.append("%d %s" % (instant, name))
    return events


def _run_c(module, trace, tmp_path):
    bundle = module.c_code()
    (tmp_path / ("%s.h" % module.name)).write_text(bundle.header)
    (tmp_path / ("%s.c" % module.name)).write_text(bundle.source)
    (tmp_path / "main.c").write_text(_main_c(module, trace))
    binary = tmp_path / "sim"
    subprocess.run(
        [gcc, "-std=c99", "-O1", "-o", str(binary),
         str(tmp_path / ("%s.c" % module.name)),
         str(tmp_path / "main.c")],
        check=True, capture_output=True, text=True)
    result = subprocess.run([str(binary)], check=True,
                            capture_output=True, text=True)
    return [line for line in result.stdout.splitlines() if line]


@pytest.mark.parametrize("source, name, trace", [
    (COUNTER, "counter",
     [{}, {"tick": None}, {"tick": None}, {"clear": None},
      {"tick": None}, {"tick": None, "clear": None}]),
    (CROSSING, "crossing",
     [{}, {"tick": None}, {"tick": None, "request": None},
      {"tick": None}, {"tick": None}, {"tick": None}]),
    (FIFO, "fifo",
     [{}, {"push": 11}, {"push": 22}, {"pop": None},
      {"push": 33, "pop": None}, {"pop": None}, {"pop": None},
      {"pop": None}]),
])
def test_generated_c_matches_python(tmp_path, source, name, trace):
    module = EclCompiler().compile_text(source).module(name)
    c_events = _run_c(module, trace, tmp_path)
    py_events = _python_reference(module, trace)
    assert c_events == py_events


def test_generated_c_compiles_warning_clean(tmp_path):
    module = EclCompiler().compile_text(COUNTER).module("counter")
    bundle = module.c_code()
    (tmp_path / "counter.h").write_text(bundle.header)
    (tmp_path / "counter.c").write_text(bundle.source)
    result = subprocess.run(
        [gcc, "-std=c99", "-Wall", "-c", str(tmp_path / "counter.c"),
         "-o", str(tmp_path / "counter.o")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    # Unused-label warnings are tolerated; real warnings are not.
    serious = [line for line in result.stderr.splitlines()
               if "warning" in line and "unused label" not in line
               and "defined but not used" not in line]
    assert not serious, serious
