"""Integration: ``eclc farm run`` end to end.

Covers the PR's acceptance bar: one invocation executing 100+ jobs
across two designs and several engines, producing a FarmReport with
per-job statuses and a persisted TraceLedger.
"""

import json
import os

import pytest

from repro.cli import main
from repro.designs import AUDIO_BUFFER_ECL, PROTOCOL_STACK_ECL
from repro.farm import TraceLedger


@pytest.fixture(scope="module")
def design_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("farm-designs")
    stack = root / "stack.ecl"
    stack.write_text(PROTOCOL_STACK_ECL)
    buffer_ = root / "buffer.ecl"
    buffer_.write_text(AUDIO_BUFFER_ECL)
    return str(stack), str(buffer_)


class TestFarmRunAcceptance:
    def test_hundred_jobs_two_designs_four_engines(self, design_files,
                                                   tmp_path, capsys):
        stack, buffer_ = design_files
        ledger_dir = str(tmp_path / "ledger")
        report_path = str(tmp_path / "report.json")
        # 2 modules x 4 engines x 17 traces = 136 jobs, one invocation.
        assert main([
            "farm", "run", stack, buffer_,
            "-m", "toplevel", "-m", "audio_buffer",
            "--engines", "efsm,interp,native,equivalence",
            "--traces", "17", "--length", "8",
            "-j", "1", "--ledger", ledger_dir,
            "--report", report_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "136 job(s) over 2 design(s)" in out
        assert "reactions/sec" in out

        data = json.load(open(report_path))
        assert data["total"] == 136
        assert data["ok"] is True
        assert data["status_counts"] == {"ok": 136}
        assert {row["engine"] for row in data["results"]} == \
            {"efsm", "interp", "native", "equivalence"}
        assert all(row["status"] == "ok" for row in data["results"])
        assert data["reactions"] == 136 * 8

        ledger = TraceLedger(ledger_dir)
        entries = ledger.entries()
        assert len(entries) == 136
        header, records = ledger.load(entries[0]["trace"])
        assert header["instants"] == len(records) == 8

    def test_spec_file_drives_batch(self, design_files, tmp_path,
                                    capsys):
        stack, buffer_ = design_files
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps({
            "workers": 1,
            "ledger": "spec-traces",
            "designs": {"stack": stack, "buffer": buffer_},
            "jobs": [
                {"design": "stack", "modules": ["toplevel"],
                 "engines": ["efsm", "native", "equivalence"],
                 "traces": 3, "length": 6, "seed": 11},
                {"design": "buffer", "modules": ["audio_buffer"],
                 "engines": ["rtos"], "traces": 2, "length": 6},
                {"design": "stack", "modules": ["toplevel"],
                 "engines": ["rtos"], "traces": 1, "length": 6,
                 "tasks": [
                     ["assemble", "assemble", 3,
                      {"outpkt": "packet"}],
                     ["prochdr", "prochdr", 2, {"inpkt": "packet"}],
                     ["checkcrc", "checkcrc", 1,
                      {"inpkt": "packet"}]]},
            ],
        }))
        assert main(["farm", "run", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "12 job(s) over 2 design(s)" in out
        assert os.path.isdir(str(tmp_path / "spec-traces"))

    def test_exit_one_on_failing_job(self, tmp_path, capsys):
        bad = tmp_path / "bad.ecl"
        bad.write_text("""
module fine (input pure go, output pure done)
{
    while (1) { await (go); emit (done); }
}
""")
        # Restricting to a module that exists plus asking a second
        # design-less module is fine; instead force a runtime error by
        # requesting a module that does not exist via the spec path.
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "designs": {"bad": str(bad)},
            "workers": 1,
            "jobs": [{"design": "bad", "modules": ["ghost"],
                      "engines": ["efsm"], "traces": 1, "length": 2}],
        }))
        assert main(["farm", "run", "--spec", str(spec)]) == 1
        out = capsys.readouterr().out
        assert "error=1" in out and "no module named" in out

    def test_needs_files_or_spec(self, capsys):
        assert main(["farm", "run"]) == 2
        assert "needs design files or --spec" in \
            capsys.readouterr().err

    def test_bad_spec_is_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "broken.json"
        spec.write_text("{not json")
        assert main(["farm", "run", "--spec", str(spec)]) == 1
        assert "bad farm spec" in capsys.readouterr().err

    def test_determinism_same_batch_same_traces(self, design_files,
                                                tmp_path, capsys):
        """Re-running an identical batch reproduces identical trace
        digests — the deterministic-seed contract."""
        stack, _ = design_files
        digests = []
        for round_ in ("a", "b"):
            ledger_dir = str(tmp_path / ("ledger-" + round_))
            assert main([
                "farm", "run", stack, "-m", "toplevel",
                "--engines", "efsm", "--traces", "5", "--length", "6",
                "-j", "1", "--ledger", ledger_dir,
            ]) == 0
            capsys.readouterr()
            digests.append([entry["trace"] for entry
                            in TraceLedger(ledger_dir).entries()])
        assert digests[0] == digests[1]
        assert len(set(digests[0])) == 5   # distinct traces per job


class TestNativeTaskEngine:
    """``--task-engine native`` / spec ``task_engine`` end to end."""

    def test_flag_drives_native_tasks_and_prints_kernel_stats(
            self, design_files, tmp_path, capsys):
        stack, _buffer = design_files
        report_path = str(tmp_path / "rtos-report.json")
        assert main([
            "farm", "run", stack, "-m", "toplevel",
            "--engines", "rtos", "--task-engine", "native",
            "--traces", "2", "--length", "6", "-j", "1",
            "--report", report_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "rtos: dispatches=" in out
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["ok"]
        assert report["kernel_stats"]["dispatches"] > 0
        for row in report["results"]:
            assert row["kernel_stats"]["dispatches"] > 0

    def test_spec_task_engine_partition(self, design_files, tmp_path,
                                        capsys):
        stack, _buffer = design_files
        spec = tmp_path / "partition.json"
        spec.write_text(json.dumps({
            "workers": 1,
            "cache_dir": "spec-cache",
            "designs": {"stack": stack},
            "jobs": [
                {"design": "stack", "modules": ["toplevel"],
                 "engines": ["rtos"], "traces": 2, "length": 6,
                 "task_engine": "native",
                 "tasks": [
                     ["assemble", "assemble", 3, {"outpkt": "packet"}],
                     ["prochdr", "prochdr", 2, {"inpkt": "packet"}],
                     ["checkcrc", "checkcrc", 1,
                      {"inpkt": "packet"}]]},
            ],
        }))
        assert main(["farm", "run", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "2 job(s) over 1 design(s)" in out
        assert "rtos: dispatches=" in out
        assert os.path.isdir(str(tmp_path / "spec-cache"))
