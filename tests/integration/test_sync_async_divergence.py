"""The paper's caveat: synchronous and asynchronous composition CAN
behave differently.

Section 4: "the behavior of the two may be different in general, e.g.,
when a reset signal occurs and is received at the same time by all
modules in the synchronous case, and at different times in the
asynchronous case".  These tests construct exactly such scenarios and
check that the reproduction exhibits — and *accounts for* — the
divergence: lost events are counted by the CFSM one-place buffers, and
the reset skew is observable.
"""


from repro.core import EclCompiler
from repro.rtos import RtosKernel, RtosTask

COUNTER_PAIR = """
/* Two counters; sync composition resets both in the same instant. */
module count_a (input pure tick, input pure reset_all,
                output int total_a)
{
    int n;
    n = 0;
    while (1) {
        await (tick | reset_all);
        present (reset_all) { n = 0; } else { n = n + 1; }
        emit_v (total_a, n);
    }
}

module count_b (input pure tick, input pure reset_all,
                output int total_b)
{
    int n;
    n = 0;
    while (1) {
        await (tick | reset_all);
        present (reset_all) { n = 0; } else { n = n + 1; }
        emit_v (total_b, n);
    }
}

module pair (input pure tick, input pure reset_all,
             output int total_a, output int total_b)
{
    par {
        count_a (tick, reset_all, total_a);
        count_b (tick, reset_all, total_b);
    }
}
"""


class TestSimultaneousReset:
    def test_synchronous_reset_hits_both_in_same_instant(self):
        design = EclCompiler().compile_text(COUNTER_PAIR)
        reactor = design.module("pair").reactor()
        reactor.react()
        for _ in range(3):
            reactor.react(inputs={"tick"})
        out = reactor.react(inputs={"reset_all", "tick"})
        # One instant: both counters see reset and tick together, both
        # report zero.
        assert out.values == {"total_a": 0, "total_b": 0}

    def test_asynchronous_reset_reaches_tasks_at_different_times(self):
        design = EclCompiler().compile_text(COUNTER_PAIR)
        kernel = RtosKernel()
        kernel.add_task(RtosTask("a", design.module("count_a").reactor(),
                                 priority=2))
        kernel.add_task(RtosTask("b", design.module("count_b").reactor(),
                                 priority=1))
        kernel.start()
        for _ in range(3):
            kernel.post_input("tick")
            kernel.run_until_idle()
        # Post reset and tick before letting anything run: each task
        # consumes BOTH pending events in one reaction, but the two
        # tasks do so in separate dispatches — the reset is "received
        # at different times" in RTOS time, though the outcome here
        # still agrees with the synchronous one.
        kernel.post_input("reset_all")
        kernel.post_input("tick")
        out = kernel.run_until_idle()
        assert out == {"total_a": 0, "total_b": 0}


BURSTY = """
module slowpoke (input int data, output int seen)
{
    while (1) {
        await (data);
        await ();      /* one instant of processing per message */
        await ();
        emit_v (seen, data);
    }
}
"""


class TestEventLoss:
    """One-place CFSM buffers lose bursts that synchrony would see."""

    def test_synchronous_composition_sees_every_value(self):
        design = EclCompiler().compile_text(BURSTY)
        reactor = design.module("slowpoke").reactor()
        reactor.react()
        seen = []
        # One value every 3 instants: exactly the module's service rate.
        for value in (1, 2, 3):
            out = reactor.react(values={"data": value})
            for _ in range(2):
                out = reactor.react()
                if "seen" in out.emitted:
                    seen.append(out.values["seen"])
        assert seen == [1, 2, 3]

    def test_asynchronous_burst_overwrites_mailbox(self):
        design = EclCompiler().compile_text(BURSTY)
        kernel = RtosKernel()
        kernel.add_task(RtosTask("slow", design.module("slowpoke")
                                 .reactor(), priority=1))
        kernel.start()
        # A burst of three values before the task can drain them: the
        # one-place mailbox keeps only the last (and counts the loss).
        task = kernel.task("slow")
        task.deliver("data", 1)
        task.deliver("data", 2)
        task.deliver("data", 3)
        out = kernel.run_until_idle()
        assert out.get("seen") == 3
        assert kernel.total_lost_events() == 2

    def test_lost_events_surface_in_partition_row(self):
        from repro.core import PartitionSpec, TaskSpec, run_partition
        design = EclCompiler().compile_text(BURSTY)
        spec = PartitionSpec("1 task", [TaskSpec("slow", "slowpoke")])

        def bench(kernel):
            task = kernel.task("slow")
            task.deliver("data", 1)
            task.deliver("data", 2)
            kernel.run_until_idle()
            return None

        result = run_partition(design, spec, bench, "Burst")
        assert result.row.lost_events == 1
