"""Integration: the telemetry surface end to end.

The acceptance bar: scrape ``GET /v1/metrics`` over the real socket
*while a batch is in flight* and find valid Prometheus text covering
queue depth, per-tenant batch latency, pipeline cache hits/misses and
journal appends.  Plus the sibling surfaces — ``/v1/metrics.json``,
the enriched ``/v1/health``, ``eclc stats`` one-shot and offline, and
the ``eclc farm run --profile`` breakdown whose phase total must sit
within 10% of the measured wall.
"""

import json
import re
import threading
import time

import pytest

from repro import telemetry
from repro.cli import main
from repro.designs import PROTOCOL_STACK_ECL
from repro.serve import ServeClient, SimulationService, make_server

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""


def batch_document(traces=3, seed=11):
    return {
        "designs": {"stack": {"text": PROTOCOL_STACK_ECL}},
        "jobs": [
            {"design": "stack", "modules": ["toplevel"],
             "engines": ["efsm"], "traces": traces, "length": 6,
             "seed": seed},
        ],
    }


@pytest.fixture()
def telemetry_on():
    """Telemetry live with a clean registry, fully off afterwards."""
    telemetry.reset()
    telemetry.enable()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def served(tmp_path, telemetry_on):
    """A live instrumented service + HTTP server on a free port."""
    service = SimulationService(data_root=str(tmp_path / "serve-data"),
                                workers=1)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.server_address[1])
    try:
        yield service, client
    finally:
        service.pool.fault_hook = None
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=10)


class TestMetricsEndpoint:
    def test_scrape_while_batch_in_flight(self, served):
        """The headline acceptance test: a mid-batch scrape exposes
        queue depth, tenant batch latency, cache traffic and journal
        appends as parseable Prometheus text."""
        service, client = served

        # Warm batch completes first: populates the per-tenant batch
        # latency histogram and the journal append counters.
        warm = client.submit(batch_document(), tenant="acme")
        rows = list(client.stream_results(warm["batch"]))
        assert all(row["status"] == "ok" for row in rows)

        # Gate the single worker on the next batch's first job so the
        # rest of it is *provably* still queued at scrape time.
        holding = threading.Event()
        release = threading.Event()

        def gate(entry):
            holding.set()
            assert release.wait(timeout=30)

        service.pool.fault_hook = gate
        stuck = client.submit(batch_document(traces=4, seed=23),
                              tenant="acme")
        assert holding.wait(timeout=30)
        try:
            text = client.metrics_text()
        finally:
            service.pool.fault_hook = None
            release.set()

        series = telemetry.parse_prometheus(text)

        # queue depth: 3 jobs behind the held one (workers=1)
        ((_, depth),) = series["ecl_serve_queue_depth"]
        assert depth >= 1
        ((_, in_flight),) = series["ecl_serve_queue_in_flight"]
        assert in_flight >= 1

        # per-tenant batch latency histogram, from the warm batch
        batch_counts = dict(
            (labels["tenant"], value)
            for labels, value in series["ecl_serve_batch_seconds_count"])
        assert batch_counts["acme"] >= 1
        assert any(labels.get("le") == "+Inf"
                   for labels, _ in series["ecl_serve_batch_seconds_bucket"])

        # pipeline cache traffic: the warm batch compiled once (miss)
        # then reused (hit)
        outcomes = set(
            labels["outcome"]
            for labels, value in
            series["ecl_pipeline_cache_requests_total"] if value > 0)
        assert outcomes == {"hit", "miss"}

        # journal appends: admit + one row per finished job + end
        appends = dict(
            (labels["kind"], value)
            for labels, value in series["ecl_serve_journal_appends_total"])
        assert appends.get("admit", 0) >= 2  # both batches admitted
        assert appends.get("row", 0) >= 3
        assert appends.get("end", 0) >= 1

        # admission counters line up with what we submitted
        ((_, admitted),) = series["ecl_serve_admitted_total"]
        assert admitted == 7  # 3 warm + 4 gated

        # drain the gated batch so teardown is clean
        rows = list(client.stream_results(stuck["batch"]))
        assert len(rows) == 4

    def test_metrics_json_mirrors_prometheus(self, served):
        _service, client = served
        done = client.submit(batch_document(), tenant="acme")
        list(client.stream_results(done["batch"]))

        snapshot = client.metrics_json()
        names = {family["name"] for family in snapshot["metrics"]}
        text = client.metrics_text()
        for name in names:
            assert name in text
        assert "ecl_serve_jobs_executed_total" in names
        assert "ecl_farm_job_seconds" in names

    def test_metrics_text_content_type_is_prometheus(self, served):
        import http.client

        _service, client = served
        connection = http.client.HTTPConnection(client.host, client.port)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            response.read()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "text/plain; version=0.0.4; charset=utf-8"
        finally:
            connection.close()

    def test_disabled_telemetry_serves_empty_exposition(self, tmp_path):
        telemetry.disable()
        telemetry.reset()
        service = SimulationService(workers=1)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServeClient(port=server.server_address[1])
        try:
            done = client.submit(batch_document())
            list(client.stream_results(done["batch"]))
            assert client.metrics_text() == ""
            assert client.metrics_json() == {"metrics": []}
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=10)


class TestScaleOutMetrics:
    """Metric-name contract for the scale-out rung: pool mode, fused
    sweep sizes, per-tenant fair-share and quota counters, process
    worker crash/restart counters."""

    def test_fairness_and_quota_metric_names(self, tmp_path,
                                             telemetry_on):
        from repro.serve import TenantQuotaError

        service = SimulationService(workers=0,
                                    tenant_weights={"acme": 2.0},
                                    max_queued_per_tenant=4)
        try:
            service.submit(batch_document(), tenant="acme")  # 3 jobs
            with pytest.raises(TenantQuotaError):
                service.submit(batch_document(), tenant="acme")
            entry = service.queue.get(timeout=0)
            assert entry is not None
            service.record_gauges()
            text = telemetry.render_prometheus(telemetry.get_registry())
            series = telemetry.parse_prometheus(text)
            ((labels, value),) = series["ecl_pool_mode"]
            assert labels["mode"] == "thread" and value == 1
            quota = dict((labels["tenant"], value) for labels, value in
                         series["ecl_serve_tenant_quota_rejected_total"])
            assert quota["acme"] == 3
            dequeues = dict((labels["tenant"], value) for labels, value
                            in series["ecl_serve_tenant_dequeues_total"])
            assert dequeues["acme"] == 1
            tenant_gauges = {
                labels["tenant"]
                for labels, _ in series["ecl_serve_tenant_queued"]}
            assert "acme" in tenant_gauges
            assert "ecl_serve_tenant_deficit" in series
        finally:
            service.shutdown(drain=False, timeout=5)

    def test_fused_sweep_sizes_observed(self, tmp_path, telemetry_on):
        doc = {
            "designs": {"e": {"text": ECHO}},
            "jobs": [{"design": "e", "modules": ["echo"],
                      "engines": ["vector"], "traces": 2, "length": 6}],
        }
        service = SimulationService(workers=1, start=False)
        try:
            batches = [service.submit(doc) for _ in range(2)]
            service.pool.start()
            for batch in batches:
                assert batch.wait(timeout=30)
            snapshot = telemetry.snapshot()
            families = {f["name"]: f for f in snapshot["metrics"]}
            assert "ecl_serve_fused_jobs" in families
            (sample,) = families["ecl_serve_fused_jobs"]["samples"]
            assert sample["count"] == 1
            assert sample["sum"] == 4  # two 2-job batches, one dispatch
        finally:
            service.shutdown(drain=False, timeout=10)

    def test_process_pool_crash_metric_names(self, tmp_path,
                                             telemetry_on):
        service = SimulationService(data_root=str(tmp_path / "svc"),
                                    workers=1, pool_mode="process",
                                    start=False)
        killed = []

        def kill_once(entry, worker):
            if not killed:
                killed.append(worker.pid)
                worker.kill()

        service.pool.process_fault_hook = kill_once
        service.pool.start()
        try:
            batch = service.submit(batch_document(traces=2))
            assert batch.wait(timeout=60)
            assert all(r.ok for r in batch.results)
            service.record_gauges()
            text = telemetry.render_prometheus(telemetry.get_registry())
            series = telemetry.parse_prometheus(text)
            ((labels, value),) = series["ecl_pool_mode"]
            assert labels["mode"] == "process" and value == 1
            ((_, crashes),) = series["ecl_serve_worker_proc_crashes_total"]
            assert crashes == 1
            ((_, restarts),) = \
                series["ecl_serve_worker_proc_restarts_total"]
            assert restarts >= 1
        finally:
            service.pool.process_fault_hook = None
            service.shutdown(drain=True, timeout=30)


class TestHealthSurface:
    def test_health_reports_recovery_quarantine_and_telemetry(self, served):
        service, client = served
        done = client.submit(batch_document(), tenant="acme")
        list(client.stream_results(done["batch"]))
        # the executed counter increments just after the last result
        # lands, so give it a beat
        for _ in range(50):
            health = client.health()
            if health["jobs_executed"] >= 3:
                break
            time.sleep(0.05)
        assert health["telemetry"] is True
        assert health["quarantined"] == 0
        assert health["jobs_executed"] >= 3
        assert health["batches_open"] == 0
        assert "recovery" in health
        assert health["journal_errors"] == 0


class TestStatsCli:
    def test_one_shot_against_live_service(self, served, capsys):
        _service, client = served
        done = client.submit(batch_document(), tenant="acme")
        list(client.stream_results(done["batch"]))

        assert main(["stats", "--port", str(client.port)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "ecl_serve_jobs_executed_total" in out
        assert "histograms:" in out
        assert "ecl_serve_batch_seconds{tenant=acme}" in out

    def test_one_shot_json(self, served, capsys):
        _service, client = served
        done = client.submit(batch_document())
        list(client.stream_results(done["batch"]))

        assert main(["stats", "--port", str(client.port),
                     "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        names = {family["name"] for family in snapshot["metrics"]}
        assert "ecl_serve_admitted_total" in names

    def test_offline_report_mode(self, tmp_path, capsys):
        echo = tmp_path / "echo.ecl"
        echo.write_text(ECHO)
        report_path = tmp_path / "report.json"
        assert main(["farm", "run", str(echo), "--engines", "efsm",
                     "--traces", "2", "--length", "8",
                     "--report", str(report_path)]) == 0
        capsys.readouterr()
        assert main(["stats", "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "farm report: 2 job(s)" in out
        assert "efsm" in out
        assert "ok=2" in out


class TestProfileFlag:
    def test_farm_run_profile_total_within_10pct_of_wall(self, tmp_path,
                                                         capsys):
        """The ``--profile`` acceptance bar: the printed phase total is
        the measured wall by construction — parse both back out of the
        table and hold them to 10%."""
        echo = tmp_path / "echo.ecl"
        echo.write_text(ECHO)
        assert main(["farm", "run", str(echo), "--engines", "efsm",
                     "--traces", "2", "--length", "8",
                     "--profile"]) == 0
        captured = capsys.readouterr()
        assert "--profile runs inline" in captured.err
        out = captured.out

        header = re.search(r"profile: (\d+) span\(s\), wall ([0-9.]+)s",
                           out)
        assert header, out
        assert int(header.group(1)) > 0
        wall = float(header.group(2))
        total = re.search(r"total\s+([0-9.]+)s", out)
        assert total, out
        assert float(total.group(1)) == pytest.approx(wall, rel=0.10,
                                                      abs=2e-3)
        # the breakdown names real phases
        assert "farm.job" in out
        assert "(untracked)" in out
        # profile mode must not leave the global registry enabled
        assert not telemetry.is_enabled()

    def test_verify_run_profile_prints_breakdown(self, tmp_path, capsys):
        echo = tmp_path / "echo.ecl"
        echo.write_text(ECHO)
        assert main(["verify", "run", str(echo), "--module", "echo",
                     "--implies", "pong:pong",
                     "--rounds", "1", "--jobs", "2",
                     "--length", "8", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "(untracked)" in out
        assert not telemetry.is_enabled()
