"""Integration: the serving layer's HTTP surface end to end.

Covers the PR's acceptance bars over the real socket: a second
submission of an identical batch hits the warm per-tenant cache with
zero compile-stage misses, and the streamed stable result rows are
byte-identical to a direct ``eclc farm run`` of the same spec.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.designs import PROTOCOL_STACK_ECL
from repro.serve import ServeClient, SimulationService, make_server

SPEC_JOBS = [
    {"design": "stack", "modules": ["toplevel"],
     "engines": ["efsm", "native"], "traces": 3, "length": 6,
     "seed": 11},
]


def batch_document():
    return {
        "designs": {"stack": {"text": PROTOCOL_STACK_ECL}},
        "jobs": [dict(entry) for entry in SPEC_JOBS],
    }


@pytest.fixture()
def served(tmp_path):
    """A live service + HTTP server on a free port, torn down after."""
    service = SimulationService(data_root=str(tmp_path / "serve-data"),
                                workers=2)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.server_address[1])
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=10)


class TestHttpSurface:
    def test_healthz_and_status(self, served):
        _service, client = served
        assert client.healthz()
        status = client.status()
        assert status["accepting"] is True
        assert status["queue"]["depth"] >= 1

    def test_submit_poll_stream_and_ledger(self, served):
        _service, client = served
        admitted = client.submit(batch_document(), tenant="alice")
        assert admitted["jobs"] == 6
        rows = list(client.stream_results(admitted["batch"]))
        assert len(rows) == 6
        assert all(row["status"] == "ok" for row in rows)
        polled = client.batch_status(admitted["batch"])
        assert polled["done"] is True
        assert polled["completed"] == 6
        assert polled["status_counts"] == {"ok": 6}
        entries = client.ledger("alice")
        assert len(entries) == 6
        trace = client.fetch_trace("alice", entries[0]["trace"])
        assert trace["header"]["design"] == "stack"
        assert len(trace["records"]) == trace["header"]["instants"]

    def test_cross_tenant_trace_fetch_is_404(self, served):
        _service, client = served
        admitted = client.submit(batch_document(), tenant="alice")
        list(client.stream_results(admitted["batch"]))
        digest = client.ledger("alice")[0]["trace"]
        # make the other tenant exist server-side, then be refused
        client.submit(batch_document(), tenant="bob")
        with pytest.raises(Exception, match="no trace"):
            client.fetch_trace("bob", digest)

    def test_bad_requests_are_clean_errors(self, served):
        from repro.errors import EclError

        _service, client = served
        with pytest.raises(EclError, match="unknown batch"):
            client.batch_status("nope")
        with pytest.raises(EclError, match="designs"):
            client.submit({"jobs": []})
        with pytest.raises(EclError, match="tenant"):
            client.submit(batch_document(), tenant="../escape")

    def test_health_endpoint_reports_readiness(self, served):
        service, client = served
        health = client.health()
        assert health["ok"] is True
        assert health["queue_depth"] == service.queue.depth
        assert health["journal"] is True
        assert health["quarantined"] == 0
        assert "recovery" in health

    def test_health_is_503_when_draining(self, tmp_path):
        service = SimulationService(workers=0)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServeClient(port=server.server_address[1])
        try:
            service._accepting = False  # draining
            health = client.health()
            assert health["ok"] is False
            assert health["accepting"] is False
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=5)

    def test_queue_full_maps_to_429(self, tmp_path):
        from repro.serve import QueueFullError

        service = SimulationService(workers=0, queue_depth=3)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServeClient(port=server.server_address[1])
        try:
            # 6 jobs > depth 3: rejected before anything queues
            with pytest.raises(QueueFullError):
                client.submit(batch_document())
            assert client.status()["queue"]["rejected"] == 6
            assert client.status()["queue"]["queued"] == 0
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=5)

    def test_tenant_quota_maps_to_429_tenant_quota(self, tmp_path):
        from repro.serve import TenantQuotaError

        service = SimulationService(workers=0, queue_depth=64,
                                    max_queued_per_tenant=6)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServeClient(port=server.server_address[1])
        try:
            client.submit(batch_document(), tenant="greedy")
            # a second 6-job batch would put greedy at 12 > quota 6
            with pytest.raises(TenantQuotaError,
                               match="tenant_quota") as excinfo:
                client.submit(batch_document(), tenant="greedy")
            assert "greedy" in str(excinfo.value)
            # shared depth has room: another tenant still submits
            client.submit(batch_document(), tenant="modest")
            queue_stats = client.status()["queue"]
            assert queue_stats["queued"] == 12
            assert queue_stats["quota_rejected"] == 6
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=5)


class TestAcceptance:
    def test_second_submission_zero_compile_misses(self, served):
        service, client = served
        first = client.submit(batch_document(), tenant="warm")
        rows = list(client.stream_results(first["batch"]))
        assert all(row["status"] == "ok" for row in rows)
        cache = service._space("warm").cache
        misses_before = cache.stats.misses
        second = client.submit(batch_document(), tenant="warm")
        rows = list(client.stream_results(second["batch"]))
        assert all(row["status"] == "ok" for row in rows)
        assert cache.stats.misses == misses_before, \
            "repeat submission must be fully cache-served"

    def test_streamed_results_match_direct_farm_run(self, served,
                                                    tmp_path, capsys):
        """Same spec through the service and through ``eclc farm run``
        yields byte-identical stable result rows."""
        _service, client = served
        admitted = client.submit(batch_document())
        streamed = sorted(client.stream_results(admitted["batch"],
                                                stable=True),
                          key=lambda row: row["index"])

        stack = tmp_path / "stack.ecl"
        stack.write_text(PROTOCOL_STACK_ECL)
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps({
            "workers": 1,
            "ledger": "direct-ledger",
            "designs": {"stack": str(stack)},
            "jobs": SPEC_JOBS,
        }))
        report_path = tmp_path / "report.json"
        assert main(["farm", "run", "--spec", str(spec),
                     "--report", str(report_path)]) == 0
        capsys.readouterr()
        report = json.load(open(report_path))
        direct = sorted(report["results"], key=lambda row: row["index"])

        def stable_bytes(row):
            payload = {key: value for key, value in row.items()
                       if key not in ("elapsed", "trace_path",
                                      "worker_pid")}
            return json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))

        assert len(streamed) == len(direct) == 6
        for service_row, farm_row in zip(streamed, direct):
            assert json.dumps(service_row, sort_keys=True,
                              separators=(",", ":")) == \
                stable_bytes(farm_row)


class TestCliServeSubmit:
    def test_submit_against_in_process_server(self, tmp_path, capsys):
        """``eclc submit`` (inlining a path-based spec) against a live
        server: the CLI round trip of the HTTP surface."""
        stack = tmp_path / "stack.ecl"
        stack.write_text(PROTOCOL_STACK_ECL)
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps({
            "designs": {"stack": str(stack)},
            "jobs": SPEC_JOBS,
        }))
        service = SimulationService(workers=2)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        port = str(server.server_address[1])
        try:
            assert main(["submit", str(spec), "--port", port,
                         "--watch", "--stable",
                         "--report", str(tmp_path / "rows.json")]) == 0
            out = capsys.readouterr().out
            assert "6 job(s) admitted" in out
            assert "6/6 ok" in out
            rows = json.load(open(tmp_path / "rows.json"))
            assert len(rows) == 6
            assert all("elapsed" not in row for row in rows)
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=5)
