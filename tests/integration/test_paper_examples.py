"""Integration tests: the paper's figures, compiled and executed.

Figure artifacts (DESIGN.md experiment index): each listing must compile
through the full pipeline; the functional stack must accept matching
packets and reject others; the synchronous and asynchronous compositions
must agree on the testbench.
"""

import pytest

from repro.core import EclCompiler, PartitionSpec, TaskSpec, run_partition
from repro.designs import (
    AUDIO_BUFFER_ECL,
    PROTOCOL_STACK_ECL,
    PROTOCOL_STACK_FIGURES_ECL,
)

HDRSIZE = 6
PKTSIZE = 64
MYADDR = 0x40


def crc_of(packet):
    crc = 0
    for byte in packet:
        crc = ((crc ^ byte) << 1) & 0xFFFFFFFF
    return crc


def make_packet(good_header=True, good_crc=True):
    header = [(MYADDR + j) & 0xFF if good_header else 0x77
              for j in range(HDRSIZE)]
    body = [0] * (PKTSIZE - HDRSIZE - 2)
    if good_crc:
        for c0 in range(256):
            for c1 in range(256):
                candidate = header + body + [c0, c1]
                if crc_of(candidate) & 0xFFFF == c0 | (c1 << 8):
                    return candidate
        raise AssertionError("no CRC trailer")
    packet = header + body + [0xAB, 0xCD]
    assert crc_of(packet) & 0xFFFF != 0xAB | (0xCD << 8)
    return packet


@pytest.fixture(scope="module")
def design():
    return EclCompiler().compile_text(PROTOCOL_STACK_ECL, "stack.ecl")


class TestFigureArtifacts:
    """Every figure compiles through all three phases."""

    def test_figures_verbatim_compile(self):
        # The listings exactly as printed (including Figure 2's
        # same-instant crc_ok emission and its (int) cast).
        figures = EclCompiler().compile_text(
            PROTOCOL_STACK_FIGURES_ECL, "figures.ecl")
        for name in ["assemble", "checkcrc", "prochdr", "toplevel"]:
            efsm = figures.module(name).efsm()
            assert efsm.state_count >= 2

    def test_figure1_assemble_split(self, design):
        # Figure 1 has only reactive loops: nothing extracted.
        assert design.module("assemble").split_report().extracted_count == 0

    def test_figure2_checkcrc_split(self, design):
        # Figure 2's CRC loop is a data loop: extracted as a C function.
        report = design.module("checkcrc").split_report()
        assert report.extracted_count == 1

    def test_figure3_prochdr_uses_local_signal(self, design):
        kernel = design.module("prochdr").kernel
        assert any(name == "kill_check" for name, _t in
                   kernel.local_signals)

    def test_figure4_toplevel_is_product(self, design):
        kernel = design.module("toplevel").kernel
        assert len(kernel.inlined_instances) == 3

    def test_esterel_artifacts_generated(self, design):
        for name in ["assemble", "checkcrc", "prochdr"]:
            glue = design.module(name).glue()
            assert glue.esterel_text.startswith("module %s:" % name)

    def test_c_artifacts_generated(self, design):
        bundle = design.module("toplevel").c_code()
        assert "toplevel_react" in bundle.source


class TestStackBehaviour:
    def drive(self, reactor, packet):
        matched = False
        for byte in packet:
            out = reactor.react(values={"in_byte": byte})
            matched = matched or "addr_match" in out.emitted
        for _ in range(HDRSIZE + 6):
            out = reactor.react()
            matched = matched or "addr_match" in out.emitted
        return matched

    @pytest.fixture(params=["interp", "efsm"])
    def reactor(self, design, request):
        reactor = design.module("toplevel").reactor(engine=request.param)
        reactor.react()  # start-up instant
        return reactor

    def test_good_packet_matches(self, reactor):
        assert self.drive(reactor, make_packet())

    def test_bad_header_rejected(self, reactor):
        assert not self.drive(reactor, make_packet(good_header=False))

    def test_bad_crc_rejected(self, reactor):
        assert not self.drive(reactor, make_packet(good_crc=False))

    def test_back_to_back_packets(self, reactor):
        assert self.drive(reactor, make_packet())
        assert self.drive(reactor, make_packet())
        assert not self.drive(reactor, make_packet(good_header=False))
        assert self.drive(reactor, make_packet())

    def test_reset_restarts_assembly(self, reactor):
        packet = make_packet()
        # Half a packet, then reset, then a full packet: one match.
        for byte in packet[:30]:
            reactor.react(values={"in_byte": byte})
        reactor.react(inputs={"reset"})
        assert self.drive(reactor, packet)


class TestSyncAsyncAgreement:
    """Figure 4's two implementations agree on the testbench (the paper
    notes they *can* differ; on this workload they must not)."""

    def test_match_counts_agree(self, design):
        packets = [make_packet(index % 2 == 0) for index in range(6)]

        def bench(kernel):
            matches = 0
            for packet in packets:
                for byte in packet:
                    kernel.post_input("in_byte", byte)
                    if "addr_match" in kernel.run_until_idle():
                        matches += 1
            return matches

        sync_spec = PartitionSpec("1 task",
                                  [TaskSpec("stack", "toplevel")])
        async_spec = PartitionSpec("3 tasks", [
            TaskSpec("assemble", "assemble", 3, {"outpkt": "packet"}),
            TaskSpec("prochdr", "prochdr", 2, {"inpkt": "packet"}),
            TaskSpec("checkcrc", "checkcrc", 1, {"inpkt": "packet"}),
        ])
        sync_result = run_partition(design, sync_spec, bench, "Stack")
        async_result = run_partition(design, async_spec, bench, "Stack")
        assert sync_result.testbench_result == 3
        assert async_result.testbench_result == 3

    def test_async_pays_rtos_overhead(self, design):
        def bench(kernel):
            packet = make_packet()
            for byte in packet:
                kernel.post_input("in_byte", byte)
                kernel.run_until_idle()
            return None

        sync_spec = PartitionSpec("1 task",
                                  [TaskSpec("stack", "toplevel")])
        async_spec = PartitionSpec("3 tasks", [
            TaskSpec("assemble", "assemble", 3, {"outpkt": "packet"}),
            TaskSpec("prochdr", "prochdr", 2, {"inpkt": "packet"}),
            TaskSpec("checkcrc", "checkcrc", 1, {"inpkt": "packet"}),
        ])
        sync_result = run_partition(design, sync_spec, bench, "Stack")
        async_result = run_partition(design, async_spec, bench, "Stack")
        assert async_result.row.rtos_kcycles > sync_result.row.rtos_kcycles
        assert async_result.kernel_stats["context_switches"] > \
            sync_result.kernel_stats["context_switches"]


class TestAudioBufferBehaviour:
    @pytest.fixture(scope="class")
    def audio(self):
        return EclCompiler().compile_text(AUDIO_BUFFER_ECL, "audio.ecl")

    def warmed_reactor(self, audio):
        reactor = audio.module("audio_buffer").reactor()
        reactor.react()
        for _ in range(2):
            reactor.react(inputs={"rec_tick"})
            reactor.react(inputs={"play_tick"})
        return reactor

    def test_record_then_play(self, audio):
        reactor = self.warmed_reactor(audio)
        recorded = [11, 22, 33]
        played = []
        for value in recorded:
            reactor.react(values={"adc_in": value})
        for _ in range(6):
            out = reactor.react(inputs={"play_tick"})
            if "dac_out" in out.emitted:
                played.append(out.values["dac_out"])
        assert played == recorded

    def test_pop_on_empty_fifo_is_silent(self, audio):
        reactor = self.warmed_reactor(audio)
        for _ in range(6):
            out = reactor.react(inputs={"play_tick"})
            assert "dac_out" not in out.emitted

    def test_overflow_raises_watermark(self, audio):
        reactor = self.warmed_reactor(audio)
        saw_full = False
        for value in range(14):
            out = reactor.react(values={"adc_in": value})
            saw_full = saw_full or "almost_full" in out.emitted
        assert saw_full

    def test_fifo_drops_beyond_capacity(self, audio):
        reactor = self.warmed_reactor(audio)
        for value in range(20):          # capacity is 16
            reactor.react(values={"adc_in": value})
        played = []
        for _ in range(2 * 24):
            out = reactor.react(inputs={"play_tick"})
            if "dac_out" in out.emitted:
                played.append(out.values["dac_out"])
        assert played == list(range(16))
