"""Chaos suite: the serving layer under deterministic fault injection.

Every test drives a :class:`~repro.serve.chaos.FaultPlan` — seeded
worker crashes, crash-after-record deaths, journal/ledger write
OSErrors, queue stalls, slow jobs — through a live SimulationService
and asserts the robustness invariants hold *exactly*:

* zero lost rows: every admitted job reports exactly one result;
* zero duplicated rows: no job id appears twice, even when a worker
  dies between recording a result and acknowledging it;
* byte-identical stable rows: surviving faults never perturbs the
  reproducible payload a fault-free farm run of the same spec yields;
* determinism: the same seed replays the same faults and the same
  outcome, so a chaos failure is a normal, debuggable test failure.
"""

import json

import pytest

from repro import telemetry
from repro.farm import WorkerState
from repro.farm.spec import expand_document, load_designs
from repro.serve import FaultPlan, SimulationService

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""

JOBS = 8

DOCUMENT = {
    "spec_version": 2,
    "designs": {"d": {"text": ECHO}},
    "jobs": [{"design": "d", "modules": ["echo"], "engine": "efsm",
              "n_instances": JOBS, "length": 8}],
}

#: The seed matrix: one plan per fault family, fixed seeds so CI runs
#: replay the identical schedules.  Crash limits stay below the pool's
#: max_attempts, so every injected fault is survivable.
PLANS = [
    pytest.param(
        dict(seed=11, crash_prob=0.6, crash_limit=2),
        id="worker-crashes"),
    pytest.param(
        dict(seed=23, post_crash_prob=0.5, stall_prob=0.5,
             stall_s=0.002),
        id="crash-after-record-plus-stalls"),
    pytest.param(
        dict(seed=37, journal_prob=0.5, journal_limit=None),
        id="journal-write-errors"),
    pytest.param(
        dict(seed=53, ledger_prob=1.0, ledger_limit=1, slow_prob=0.4,
             slow_s=0.002),
        id="ledger-write-errors-plus-slow-jobs"),
]


def stable_rows(results):
    return sorted(json.dumps(r.to_dict(volatile=False), sort_keys=True)
                  for r in results)


def expected_rows(tmp_path):
    """Fault-free ground truth: a direct worker run of the same spec
    (own ledger root; trace digests are content-addressed, so they
    match the service's)."""
    designs = load_designs(DOCUMENT["designs"], None, "<chaos>")
    jobs = expand_document(DOCUMENT, designs)
    state = WorkerState(designs, ledger_root=str(tmp_path / "truth"))
    return stable_rows([state.run_job(job) for job in jobs])


def run_under_plan(root, plan_kwargs, max_attempts=3,
                   pool_mode="thread", workers=3):
    service = SimulationService(data_root=str(root), workers=workers,
                                max_attempts=max_attempts,
                                pool_mode=pool_mode, start=False)
    plan = FaultPlan(**plan_kwargs).install(service)
    service.pool.start()
    try:
        batch = service.submit(DOCUMENT)
        assert batch.wait(timeout=120), "chaos batch hung"
        results = list(batch.results)
    finally:
        plan.uninstall()
        service.shutdown(drain=True, timeout=30)
    return plan, service, results


class TestChaosInvariants:
    @pytest.mark.parametrize("plan_kwargs", PLANS)
    def test_zero_lost_zero_duplicated_byte_identical(self, tmp_path,
                                                      plan_kwargs):
        plan, service, results = run_under_plan(tmp_path / "svc",
                                                plan_kwargs)
        # the plan actually exercised its seams
        assert any(plan.injected.values()), plan.describe()
        # zero lost, zero duplicated
        assert len(results) == JOBS
        assert len({r.job_id for r in results}) == JOBS
        # every fault was survivable: no error rows, and the stable
        # payload equals the fault-free farm run byte for byte.
        assert all(r.ok for r in results), \
            [r.error for r in results if not r.ok]
        assert stable_rows(results) == expected_rows(tmp_path)

    @pytest.mark.parametrize("plan_kwargs", PLANS)
    def test_same_seed_replays_identical_faults(self, tmp_path,
                                                plan_kwargs):
        first_plan, _, first = run_under_plan(tmp_path / "a",
                                              plan_kwargs)
        second_plan, _, second = run_under_plan(tmp_path / "b",
                                                plan_kwargs)
        assert first_plan.injected == second_plan.injected
        assert stable_rows(first) == stable_rows(second)

    def test_telemetry_never_perturbs_stable_rows(self, tmp_path):
        """The determinism guard: telemetry only observes.  The same
        seeded chaos run replays byte-identical stable rows with
        telemetry enabled and disabled — and the fault occurrences the
        plan injected show up as counters, not printed warnings."""
        plan_kwargs = dict(seed=23, crash_prob=0.4, crash_limit=2,
                           journal_prob=0.5, journal_limit=None)
        telemetry.disable()
        telemetry.reset()
        off_plan, _, off = run_under_plan(tmp_path / "off", plan_kwargs)
        telemetry.reset()
        telemetry.enable()
        try:
            on_plan, _, on = run_under_plan(tmp_path / "on", plan_kwargs)
            # byte-identical rows, identical fault schedule
            assert stable_rows(on) == stable_rows(off)
            assert on_plan.injected == off_plan.injected
            # injected faults became counters (per scope), not prints
            registry = telemetry.get_registry()
            for scope, times in on_plan.injected.items():
                if not times:
                    continue
                assert registry.counter("ecl_chaos_injected_total",
                                        scope=scope).value == times
            # failed journal appends were counted too
            if on_plan.injected.get("journal"):
                snapshot = telemetry.snapshot()
                names = {f["name"] for f in snapshot["metrics"]}
                assert "ecl_serve_journal_errors_total" in names
        finally:
            telemetry.disable()
            telemetry.reset()

    def test_unsurvivable_poison_quarantines_not_hangs(self, tmp_path):
        """crash_limit=None removes the survivability bound: every
        attempt of every job crashes, so every job must quarantine —
        and the batch still completes with one row per job."""
        plan, service, results = run_under_plan(
            tmp_path, dict(seed=71, crash_prob=1.0, crash_limit=None),
            max_attempts=2)
        assert len(results) == JOBS
        assert len({r.job_id for r in results}) == JOBS
        assert all(r.status == "error" for r in results)
        assert all(r.error.startswith("quarantined: ")
                   for r in results)
        assert service.quarantined == JOBS
        assert plan.injected["crash"] == JOBS * 2  # every attempt

    def test_sigkilled_worker_process_degrades_nothing(self, tmp_path):
        """Process-mode chaos: SIGKILL the live worker subprocess right
        before dispatch — a real ``kill -9``, broken pipe and all.  The
        dispatcher must recycle the child, retry the in-hand job, and
        finish the batch with zero lost rows, zero duplicates, and
        byte-identical stable payloads."""
        plan, service, results = run_under_plan(
            tmp_path / "svc",
            dict(seed=131, kill_prob=1.0, kill_limit=1),
            pool_mode="process", workers=2)
        # every job's first dispatch was killed, once each
        assert plan.injected["proc_kill"] == JOBS
        pool_stats = service.pool.stats_dict()
        assert pool_stats["mode"] == "process"
        assert pool_stats["proc_crashes"] == JOBS
        assert pool_stats["proc_restarts"] >= 1
        # zero lost, zero duplicated, byte-identical
        assert len(results) == JOBS
        assert len({r.job_id for r in results}) == JOBS
        assert all(r.ok for r in results), \
            [r.error for r in results if not r.ok]
        assert stable_rows(results) == expected_rows(tmp_path)

    def test_process_chaos_same_seed_same_outcome(self, tmp_path):
        kwargs = dict(seed=139, kill_prob=0.5, kill_limit=1)
        first_plan, _, first = run_under_plan(
            tmp_path / "a", kwargs, pool_mode="process", workers=2)
        second_plan, _, second = run_under_plan(
            tmp_path / "b", kwargs, pool_mode="process", workers=2)
        assert first_plan.injected == second_plan.injected
        assert first_plan.injected["proc_kill"] > 0
        assert stable_rows(first) == stable_rows(second)

    def test_chaos_survives_crash_recovery(self, tmp_path):
        """Faults before the crash, recovery after: replayed rows plus
        re-executed ones still reconstruct the fault-free batch."""
        root = tmp_path / "svc"
        service = SimulationService(data_root=str(root), workers=2,
                                    start=False)
        plan = FaultPlan(97, crash_prob=0.5, crash_limit=2,
                         post_crash_prob=0.4).install(service)
        service.pool.start()
        batch = service.submit(DOCUMENT)
        assert batch.wait(timeout=120)
        plan.uninstall()
        service.shutdown(drain=True, timeout=30)
        # amputate the WAL mid-batch: keep admit + the first 3 rows
        shard = root / "journal" / "default.jsonl"
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:4]) + "\n")
        revived = SimulationService(data_root=str(root), workers=2)
        try:
            assert revived.recovery["recovered_batches"] == 1
            assert revived.recovery["replayed_rows"] == 3
            recovered = revived.batch(json.loads(lines[0])["batch"])
            assert recovered.wait(timeout=120)
            assert stable_rows(recovered.results) == \
                expected_rows(tmp_path)
        finally:
            revived.shutdown(drain=True, timeout=30)

    def test_process_crash_then_recovery_replay(self, tmp_path):
        """Recovery compose, process edition: a run whose worker
        children get SIGKILLed, then a service crash (amputated WAL),
        then a *process-mode* revival replaying the journal.  Replayed
        rows plus re-executed ones reconstruct the fault-free batch."""
        root = tmp_path / "svc"
        plan, service, results = run_under_plan(
            root, dict(seed=149, kill_prob=0.6, kill_limit=1),
            pool_mode="process", workers=2)
        assert plan.injected["proc_kill"] > 0
        assert len(results) == JOBS
        # amputate the WAL mid-batch: keep admit + the first 3 rows
        shard = root / "journal" / "default.jsonl"
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:4]) + "\n")
        revived = SimulationService(data_root=str(root), workers=2,
                                    pool_mode="process")
        try:
            assert revived.recovery["recovered_batches"] == 1
            assert revived.recovery["replayed_rows"] == 3
            recovered = revived.batch(json.loads(lines[0])["batch"])
            assert recovered.wait(timeout=120)
            assert stable_rows(recovered.results) == \
                expected_rows(tmp_path)
        finally:
            revived.shutdown(drain=True, timeout=30)
