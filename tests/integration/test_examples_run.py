"""Smoke tests: every example script runs to completion.

The examples are part of the public surface (deliverable b); each must
execute without errors and print its headline results.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "protocol_stack.py",
    "audio_buffer.py",
    "legacy_migration.py",
    "hardware_synthesis.py",
    "verification_workflow.py",
    "coverage_campaign.py",
    "vector_campaign.py",  # prints an unavailable note without numpy
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), path
    monkeypatch.syspath_prepend(os.path.dirname(path))
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example %s printed nothing" % script


def test_quickstart_shows_press(capsys, monkeypatch):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "press" in out
    assert "Generated C" in out


def test_protocol_stack_matches_good_only(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR,
                                        "protocol_stack.py"))
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "good       packet -> addr_match=True" in out
    assert "bad header packet -> addr_match=False" in out


def test_verification_workflow_finds_bug(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR,
                                        "verification_workflow.py"))
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "property holds" in out
    assert "violation found" in out
    assert "never (door_open & motor_on)" in out  # compiled monitor


def test_coverage_campaign_reaches_target_and_catches_bug(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR,
                                        "coverage_campaign.py"))
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "transitions 11/11 (100.0%)" in out
    assert "VIOLATION never (door_open & motor_on)" in out
    assert "minimized to 5 instant(s)" in out
    assert "counterexample trace:" in out
