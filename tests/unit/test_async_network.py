"""Unit tests for the AsyncNetwork facade (and its agreement with the
synchronous composition on pipeline workloads)."""

import pytest

from repro.core import EclCompiler
from repro.errors import RtosError
from repro.rtos.network import AsyncNetwork
from repro.runtime.network import SyncNetwork

PRODUCER = """
module producer (input pure tick, output int data)
{
    int n;
    n = 0;
    while (1) {
        await (tick);
        n = n + 1;
        emit_v (data, n * 10);
    }
}
"""

CONSUMER = """
module consumer (input int data, output int twice)
{
    while (1) {
        await (data);
        emit_v (twice, data * 2);
    }
}
"""


def reactor_of(src, name):
    return EclCompiler().compile_text(src).module(name).reactor()


def build_async():
    net = AsyncNetwork()
    # Consumer first: its await arms before the producer's event lands.
    net.add_node("consumer", reactor_of(CONSUMER, "consumer"))
    net.add_node("producer", reactor_of(PRODUCER, "producer"))
    return net


class TestAsyncNetwork:
    def test_pipeline_delivers(self):
        net = build_async()
        out = net.step(inputs={"tick"})
        assert out.get("twice") == 20

    def test_sequence(self):
        net = build_async()
        outs = [net.step(inputs={"tick"}) for _ in range(3)]
        assert [o.get("twice") for o in outs] == [20, 40, 60]

    def test_idle_step(self):
        net = build_async()
        assert net.step() == {}

    def test_no_adding_after_start(self):
        net = build_async()
        net.start()
        with pytest.raises(RtosError):
            net.add_node("late", reactor_of(PRODUCER, "producer"))

    def test_node_access_and_names(self):
        net = build_async()
        assert set(net.node_names) == {"producer", "consumer"}
        net.step(inputs={"tick"})
        assert net.node("producer").variable("n") == 1

    def test_stats_exposed(self):
        net = build_async()
        net.step(inputs={"tick"})
        assert net.stats.dispatches > 0
        assert net.lost_events() == 0


class TestSyncAsyncAgreementOnPipelines:
    """For a feed-forward pipeline paced at one event per quiescence,
    the two composition styles must produce the same value stream."""

    def test_value_streams_match(self):
        sync_net = SyncNetwork()
        sync_net.add_node("producer", reactor_of(PRODUCER, "producer"))
        sync_net.add_node("consumer", reactor_of(CONSUMER, "consumer"))
        sync_net.step()  # start-up instant

        async_net = build_async()

        sync_values = []
        async_values = []
        for _ in range(5):
            sync_values.append(sync_net.step(inputs={"tick"}).get("twice"))
            async_values.append(async_net.step(inputs={"tick"})
                                .get("twice"))
        assert sync_values == async_values == [20, 40, 60, 80, 100]
