"""Unit tests for the vector runtime: lowering, the bit-exact
vectorized rng, sweep outcomes and the numpy-optional gate."""

import random

import pytest

from repro.errors import CompileError, EclError, EngineUnavailable
from repro.farm.jobs import StimulusSpec
from repro.pipeline import Pipeline
from repro.runtime.vector import (NUMPY_AVAILABLE, VectorCode, compile_vector,
                                  require_numpy)

np = pytest.importorskip("numpy")

# Skipping the whole file when numpy is genuinely absent keeps the
# no-numpy CI leg green; the gate itself is tested via monkeypatch.
assert NUMPY_AVAILABLE

COUNTER = """
module counter (input pure tick, input pure clear, output int value)
{
    int n;
    n = 0;
    while (1) {
        await (tick | clear);
        present (clear) { n = 0; } else { n = n + 1; }
        emit_v (value, n);
    }
}
"""

DIVIDER = """
module divider (input int x, input int y, output int q, output int r)
{
    while (1) {
        await (x);
        emit_v (q, x / ((y & 7) + 1));
        emit_v (r, x % ((y & 3) + 1));
    }
}
"""


def handle_for(source, module):
    return Pipeline().compile_text(source, filename=module).module(module)


def vector_reactor(handle):
    return handle.reactor(engine="vector")


# -- lowering ----------------------------------------------------------


def test_vector_code_is_plain_data():
    handle = handle_for(COUNTER, "counter")
    vcode = compile_vector(handle.efsm(), handle.native_code())
    assert isinstance(vcode, VectorCode)
    assert vcode.module == "counter"
    assert vcode.state_count == handle.efsm().state_count
    # The bundle is numpy-free codegen: source text, no bound arrays.
    assert "def " in vcode.source


def test_pipeline_vector_stage_caches():
    handle = handle_for(COUNTER, "counter")
    assert handle.vector_code() is handle.vector_code()


def test_vector_reactor_rejects_counter_overrides():
    handle = handle_for(COUNTER, "counter")
    with pytest.raises(CompileError):
        handle.reactor(engine="vector", counter=object())


# -- the vectorized rng ------------------------------------------------


def test_vrandom_matches_cpython_lockstep():
    from repro.runtime.vector.vrandom import VecRandom

    seeds = [0, 1, 7, 255, 2**31, 2**32 - 1, 2**32 + 1, 2**64 - 1,
             0x9F86D081884C7D65]
    vr = VecRandom(seeds)
    refs = [random.Random(seed) for seed in seeds]
    rows = np.arange(len(seeds))
    script = [("random",), ("randint", 0, 255), ("randint", 1, 1),
              ("randint", -7, 6), ("randint", 0, 2**31 - 1), ("random",),
              ("randint", 5, 1000)]
    for round_no in range(120):
        op = script[round_no % len(script)]
        if op[0] == "random":
            assert list(vr.random(rows)) == [ref.random() for ref in refs]
        else:
            got = vr.randint(rows, op[1], op[2])
            assert list(got) == [ref.randint(op[1], op[2]) for ref in refs]


def test_vrandom_subset_rows_stay_independent():
    from repro.runtime.vector.vrandom import VecRandom

    seeds = [11, 22, 33, 44]
    vr = VecRandom(seeds)
    refs = [random.Random(seed) for seed in seeds]
    evens, odds = np.array([0, 2]), np.array([1, 3])
    for round_no in range(150):
        rows = evens if round_no % 3 else odds
        got = vr.randint(rows, 0, 250)
        assert list(got) == [refs[i].randint(0, 250) for i in rows]


# -- run_specs ---------------------------------------------------------


def test_run_specs_matches_scalar_native():
    from repro.engines import derive_spec_seed
    from repro.farm.engines import build_engine
    from repro.farm.jobs import SimJob

    handle = handle_for(COUNTER, "counter")
    reactor = vector_reactor(handle)
    spec = StimulusSpec.random(length=25)
    outcome = reactor.run_specs(spec, n_instances=9, records=True)
    assert len(outcome.instants) == 9
    job = SimJob(design="c", module="counter", engine="native", stimulus=spec)
    for lane in range(9):
        assert outcome.errors[lane] is None
        scalar = build_engine("native", lambda name: handle, job)
        instants = spec.materialize(
            scalar.input_alphabet(), derive_spec_seed(spec, lane))
        records = [scalar.step(instant) for instant in instants]
        assert outcome.records[lane] == records


def test_run_specs_deterministic_and_seeded():
    handle = handle_for(COUNTER, "counter")
    reactor = vector_reactor(handle)
    spec = StimulusSpec.random(length=30, salt=5)
    first = reactor.run_specs(spec, n_instances=6, records=True)
    second = reactor.run_specs(spec, n_instances=6, records=True)
    assert first.records == second.records
    assert first.instants == second.instants
    # Explicit seeds override the derived ones.
    swapped = reactor.run_specs(spec, seeds=[1, 2], records=True)
    again = reactor.run_specs(spec, seeds=[2, 1], records=True)
    assert swapped.records[0] == again.records[1]
    assert swapped.records[1] == again.records[0]


def test_run_specs_division_faults_stay_per_lane():
    handle = handle_for(DIVIDER, "divider")
    reactor = vector_reactor(handle)
    # y & 7 + 1 can never be zero, so no faults — but drive a spec
    # whose lanes diverge in content and confirm error slots stay None.
    spec = StimulusSpec.random(length=20, present_prob=0.9)
    outcome = reactor.run_specs(spec, n_instances=16, coverage=True)
    assert outcome.errors == [None] * 16
    assert len(outcome.coverage) == 16


def test_run_specs_raw_coverage_matches_maps():
    handle = handle_for(COUNTER, "counter")
    reactor = vector_reactor(handle)
    spec = StimulusSpec.random(length=40)
    mapped = reactor.run_specs(spec, n_instances=8, coverage=True)
    raw = reactor.run_specs(spec, n_instances=8, coverage="raw")
    assert raw.coverage is None
    states, transitions, emits = raw.raw_coverage
    assert states.shape[0] == 8
    for lane in range(8):
        cov = mapped.coverage[lane]
        assert states[lane].tobytes() == bytes(cov.states)
        assert transitions[lane].tobytes() == bytes(cov.transitions)
        assert emits[lane].tobytes() == bytes(cov.emits)


def test_run_specs_empty_sweep():
    handle = handle_for(COUNTER, "counter")
    reactor = vector_reactor(handle)
    outcome = reactor.run_specs(StimulusSpec.random(length=4), seeds=[])
    assert len(outcome.instants) == 0


def test_run_specs_rejects_explicit_specs():
    handle = handle_for(COUNTER, "counter")
    reactor = vector_reactor(handle)
    spec = StimulusSpec.explicit([{"tick": None}])
    with pytest.raises(EclError):
        reactor.run_specs(spec, n_instances=2)


# -- the numpy-optional gate ------------------------------------------


def test_require_numpy_gate(monkeypatch):
    import repro.runtime.vector as vec

    monkeypatch.setattr(vec, "NUMPY_AVAILABLE", False)
    monkeypatch.setattr(vec, "_NUMPY_ERROR", "No module named 'numpy'")
    with pytest.raises(EngineUnavailable) as caught:
        require_numpy("vector")
    assert caught.value.engine == "vector"
    with pytest.raises(EngineUnavailable):
        vec.VectorReactor  # PEP 562 surface is gated too


def test_vector_engine_unavailable_without_numpy(monkeypatch):
    import repro.runtime.vector as vec

    from repro.engines import get_engine

    monkeypatch.setattr(vec, "NUMPY_AVAILABLE", False)
    monkeypatch.setattr(vec, "_NUMPY_ERROR", "No module named 'numpy'")
    engine = get_engine("vector")
    assert engine.available() is False
    with pytest.raises(EngineUnavailable):
        engine.require()
    # Every other engine keeps working.
    assert get_engine("native").available() is True
    handle = handle_for(COUNTER, "counter")
    outcome = get_engine("native").run_spec(
        handle, StimulusSpec.random(length=8), n_instances=2)
    assert outcome.errors == [None, None]


def test_farm_vector_jobs_error_rows_without_numpy(monkeypatch):
    import repro.runtime.vector as vec

    from repro.farm import SimJob, SimulationFarm

    monkeypatch.setattr(vec, "NUMPY_AVAILABLE", False)
    monkeypatch.setattr(vec, "_NUMPY_ERROR", "No module named 'numpy'")
    farm = SimulationFarm({"c": COUNTER}, workers=1)
    report = farm.run([
        SimJob(design="c", module="counter", engine="vector",
               stimulus=StimulusSpec.random(length=6)),
        SimJob(design="c", module="counter", engine="native",
               stimulus=StimulusSpec.random(length=6), index=1),
    ])
    statuses = {row.engine: row.status for row in report.results}
    assert statuses["vector"] == "error"
    assert "numpy" in report.results[0].error
    assert statuses["native"] in ("ok", "terminated")
