"""Error-path tests: every phase rejects bad input with a useful,
located message (diagnostics are part of the product)."""

import pytest

from repro.core import EclCompiler
from repro.errors import (
    CausalityError,
    CompileError,
    EclError,
    LexError,
    ParseError,
    PreprocessorError,
    ScopeError,
)
from repro.lang import parse_text


class TestErrorHierarchy:
    def test_all_errors_are_ecl_errors(self):
        for exc_type in (LexError, ParseError, PreprocessorError,
                         ScopeError, CausalityError, CompileError):
            assert issubclass(exc_type, EclError)

    def test_span_rendered_in_message(self):
        with pytest.raises(ParseError) as failure:
            parse_text("module m (input pure s) { emit(; }", "f.ecl")
        assert "f.ecl:" in str(failure.value)

    def test_one_catch_for_everything(self):
        try:
            EclCompiler().compile_text("module m (").module("m")
        except EclError:
            pass
        else:
            raise AssertionError("expected an EclError subclass")


class TestParserMessages:
    def cases(self):
        return [
            ("module m () { await; }", "("),
            ("module m (pure s) {}", "input"),
            ("module m (input pure s) { do {} }", "while"),
            ("module m (input pure s) { present s {} }", "("),
        ]

    def test_messages_mention_expectation(self):
        for source, hint in self.cases():
            with pytest.raises(ParseError) as failure:
                parse_text(source)
            assert hint in str(failure.value), source


class TestCausalityMessages:
    def test_causality_error_names_module_state(self):
        source = ("module m (input pure s, output pure t) {"
                  " signal pure p;"
                  " while (1) { await(s); present (~p) emit(p); } }")
        design = EclCompiler().compile_text(source)
        with pytest.raises(EclError) as failure:
            design.module("m").efsm()
        assert "m" in str(failure.value)

    def test_instantaneous_loop_suggests_fix(self):
        source = ("module m (input pure s, output pure t) {"
                  " while (1) { emit(t); } }")
        design = EclCompiler().compile_text(source)
        with pytest.raises(EclError) as failure:
            design.module("m")
        message = str(failure.value)
        assert "await()" in message or "data" in message


class TestCompileErrorAggregation:
    def test_multiple_problems_listed(self):
        source = ("module m (input pure s, output pure t) {"
                  " emit(zz); emit(yy); }")
        design = EclCompiler().compile_text(source)
        with pytest.raises(CompileError) as failure:
            design.module("m")
        message = str(failure.value)
        assert "zz" in message and "yy" in message
        assert "2 problem(s)" in message


class TestRuntimeGuards:
    def test_efsm_state_budget_message(self):
        from repro.core import CompileOptions
        source = ("module m (input pure s, output pure t) { %s }"
                  % " ".join("await(s);" for _ in range(8)))
        design = EclCompiler(CompileOptions(max_states=3)) \
            .compile_text(source)
        with pytest.raises(CompileError) as failure:
            design.module("m").efsm()
        assert "asynchronous partitioning" in str(failure.value)

    def test_preprocessor_error_has_location(self):
        with pytest.raises(PreprocessorError):
            parse_text('#include "missing.h"\nmodule m (input pure s) {}')


class TestDataRuntimeErrors:
    def run_body(self, body):
        source = ("module m (input pure s, output int w) {"
                  " int a[4]; int x;"
                  " while (1) { await(s); %s emit_v(w, x); } }" % body)
        reactor = EclCompiler().compile_text(source).module("m").reactor()
        reactor.react()
        return reactor.react(inputs={"s"})

    def test_out_of_bounds_index(self):
        from repro.errors import EvalError
        with pytest.raises(EvalError) as failure:
            self.run_body("x = a[7];")
        assert "out of bounds" in str(failure.value)

    def test_division_by_zero(self):
        from repro.errors import EvalError
        with pytest.raises(EvalError) as failure:
            self.run_body("x = 1 / (x - x);")
        assert "zero" in str(failure.value)
