"""Unit tests for the reactive/data splitter (paper, Section 4)."""


from repro.ecl import is_reactive, split_module
from repro.lang import ast, parse_text


def module_of(body, header=""):
    src = "%smodule m (input pure s, input int v, output pure t) { %s }" \
        % (header, body)
    program, _ = parse_text(src)
    return program.module_named("m")


def split(body, header="", **kw):
    return split_module(module_of(body, header), **kw)


class TestClassification:
    def test_data_loop_detected(self):
        report = split("int i; int a; for (i = 0; i < 8; i++) a += i;")
        assert report.extracted_count == 1
        assert report.data_blocks[0].kind == "loop"

    def test_reactive_loop_not_extracted(self):
        report = split("while (1) { await(s); emit(t); }")
        assert report.extracted_count == 0
        assert report.reactive_statements > 0

    def test_paper_figure2_crc_loop_is_data(self):
        # Figure 2: "for (i = 0, crc = 0; ...)" contains no halting
        # statement -> data loop.
        body = (
            "int i; unsigned int crc;"
            "while (1) { await(s);"
            " for (i = 0, crc = 0; i < 4; i++) { crc = (crc ^ v) << 1; }"
            " emit(t); }"
        )
        report = split(body)
        assert report.extracted_count == 1

    def test_loop_with_await_inside_is_reactive(self):
        # Figure 1's byte loop pauses on every iteration.
        report = split(
            "int cnt; for (cnt = 0; cnt < 4; cnt++) { await(s); }")
        assert report.extracted_count == 0

    def test_await_empty_keeps_loop_reactive(self):
        # "This mechanism can also be used to force a loop to be
        # implemented as a sequence of EFSM transitions" (stmt 2).
        report = split(
            "int i; for (i = 0; i < 4; i++) { await(); }")
        assert report.extracted_count == 0

    def test_nested_data_loop_extracted_once(self):
        report = split(
            "int i; int j; int a;"
            "while (1) { await(s);"
            " for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) a += i * j;"
            " }")
        assert report.extracted_count == 1

    def test_do_while_data_loop(self):
        report = split("int i; i = 0; do { i++; } while (i < 5);")
        assert report.extracted_count == 1

    def test_module_call_counts_as_reactive(self):
        src = (
            "module sub (input pure a, output pure b) { halt(); }\n"
            "module m (input pure s, output pure t) {"
            " while (1) { sub(s, t); } }"
        )
        program, _ = parse_text(src)
        report = split_module(program.module_named("m"),
                              module_names={"sub"})
        assert report.extracted_count == 0

    def test_extraction_disabled(self):
        report = split("int i; for (i = 0; i < 8; i++) i = i;",
                       extract_data_loops=False)
        assert report.extracted_count == 0
        assert report.data_statements >= 1


class TestFreeNames:
    def test_free_names_exclude_locals(self):
        report = split(
            "int total; while (1) { await(s);"
            " for (int i = 0; i < 8; i++) total += i; }")
        block = report.data_blocks[0]
        assert "total" in block.free_names
        assert "i" not in block.free_names

    def test_signal_value_read_is_free(self):
        report = split(
            "int acc; while (1) { await(s);"
            " for (int i = 0; i < 8; i++) acc += v; }")
        assert "v" in report.data_blocks[0].free_names


class TestIsReactive:
    def params(self):
        return {"module_names": frozenset()}

    def make(self, body):
        return module_of(body).body.body[0]

    def test_emit_is_reactive(self):
        assert is_reactive(self.make("emit(t);"))

    def test_assignment_is_not(self):
        assert not is_reactive(self.make("int x; x = 1;"))

    def test_deeply_nested_await_found(self):
        stmt = self.make(
            "if (1) { if (2) { while (1) { await(s); } } }")
        assert is_reactive(stmt)

    def test_signal_decl_is_reactive(self):
        assert is_reactive(self.make("signal pure k;"))


class TestReportSummary:
    def test_summary_text(self):
        report = split("int i; for (i = 0; i < 8; i++) i = i;")
        text = report.summary()
        assert "module m" in text
        assert "1 extracted" in text

    def test_block_for_identity(self):
        module = module_of(
            "int i; while (1) { await(s);"
            " for (i = 0; i < 8; i++) i = i; }")
        report = split_module(module)
        loop = None
        for node in ast.walk(module.body):
            if isinstance(node, ast.For):
                loop = node
        assert report.block_for(loop) is report.data_blocks[0]
        assert report.block_for(module.body) is None
