"""Unit tests for the simulated real-time kernel."""

import pytest

from repro.core import EclCompiler
from repro.errors import RtosError
from repro.rtos import EventFlag, Mailbox, MessageQueue, RtosKernel, RtosTask


class TestEventFlag:
    def test_post_consume(self):
        flag = EventFlag("f")
        flag.post()
        assert flag.consume()
        assert not flag.consume()

    def test_double_post_loses_one(self):
        flag = EventFlag("f")
        flag.post()
        flag.post()
        assert flag.lost_count == 1
        assert flag.consume()
        assert not flag.consume()


class TestMailbox:
    def test_post_consume_value(self):
        box = Mailbox("m")
        box.post(42)
        assert box.consume() == (True, 42)
        assert box.consume() == (False, None)

    def test_overwrite_policy(self):
        box = Mailbox("m")
        box.post(1)
        box.post(2)
        assert box.lost_count == 1
        assert box.consume() == (True, 2)

    def test_error_policy(self):
        box = Mailbox("m", policy="error")
        box.post(1)
        with pytest.raises(RtosError):
            box.post(2)

    def test_unknown_policy(self):
        with pytest.raises(RtosError):
            Mailbox("m", policy="stack")


class TestMessageQueue:
    def test_fifo_order(self):
        queue = MessageQueue("q", capacity=3)
        for value in (1, 2, 3):
            queue.post(value)
        assert [queue.consume()[1] for _ in range(3)] == [1, 2, 3]

    def test_overflow_error(self):
        queue = MessageQueue("q", capacity=1)
        queue.post(1)
        with pytest.raises(RtosError):
            queue.post(2)

    def test_overflow_drop(self):
        queue = MessageQueue("q", capacity=1, policy="drop")
        queue.post(1)
        queue.post(2)
        assert queue.lost_count == 1
        assert queue.consume() == (True, 1)

    def test_bad_capacity(self):
        with pytest.raises(RtosError):
            MessageQueue("q", capacity=0)


PING = """
module ping (input pure kick, output pure pong)
{
    while (1) { await (kick); emit (pong); }
}
"""

ADDER = """
module adder (input int a, output int total)
{
    int acc;
    acc = 0;
    while (1) {
        await (a);
        acc = acc + a;
        emit_v (total, acc);
    }
}
"""

DELTA = """
module stepper (input pure go, output pure done)
{
    while (1) {
        await (go);
        await ();    /* one self-triggered instant */
        await ();    /* and another */
        emit (done);
    }
}
"""


def make_kernel(*sources_and_names):
    kernel = RtosKernel()
    for source, module_name, task_name, priority in sources_and_names:
        reactor = EclCompiler().compile_text(source) \
            .module(module_name).reactor()
        kernel.add_task(RtosTask(task_name, reactor, priority))
    return kernel


class TestKernel:
    def test_event_to_external_output(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        kernel.post_input("kick")
        out = kernel.run_until_idle()
        assert "pong" in out

    def test_valued_event(self):
        kernel = make_kernel((ADDER, "adder", "adder", 1))
        kernel.start()
        kernel.post_input("a", 5)
        assert kernel.run_until_idle() == {"total": 5}
        kernel.post_input("a", 7)
        assert kernel.run_until_idle() == {"total": 12}

    def test_self_trigger_cascade(self):
        # await() pauses must re-schedule the task without new events
        # (paper, footnote 3).
        kernel = make_kernel((DELTA, "stepper", "stepper", 1))
        kernel.start()
        kernel.post_input("go")
        out = kernel.run_until_idle()
        assert "done" in out
        assert kernel.stats.self_triggers >= 2

    def test_unknown_signal_rejected(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        with pytest.raises(RtosError):
            kernel.post_input("nothing_consumes_this")

    def test_post_before_start_rejected(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        with pytest.raises(RtosError):
            kernel.post_input("kick")

    def test_double_start_rejected(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        with pytest.raises(RtosError):
            kernel.start()

    def test_duplicate_task_name_rejected(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        reactor = EclCompiler().compile_text(PING).module("ping").reactor()
        with pytest.raises(RtosError):
            kernel.add_task(RtosTask("ping", reactor, 1))

    def test_priority_order(self):
        """Two tasks consume the same event; the higher priority runs
        first (observed through the dispatch order)."""
        order = []

        class Probe:
            def __init__(self, name, module):
                self.name = name
                self._reactor = EclCompiler().compile_text(PING) \
                    .module("ping").reactor()
                self.module = self._reactor.module

            def react(self, inputs=None, values=None):
                order.append(self.name)
                return self._reactor.react(inputs=inputs, values=values)

        kernel = RtosKernel()
        kernel.add_task(RtosTask("low", Probe("low", None), priority=1))
        kernel.add_task(RtosTask("high", Probe("high", None), priority=9))
        kernel.start()
        order.clear()
        kernel.post_input("kick")
        kernel.run_until_idle()
        assert order == ["high", "low"]

    def test_stats_accumulate(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        for _ in range(5):
            kernel.post_input("kick")
            kernel.run_until_idle()
        stats = kernel.stats
        assert stats.dispatches >= 6   # start-up + 5 events
        assert stats.scheduler_invocations > stats.dispatches
        assert stats.posts >= 10       # 5 inputs + 5 pongs

    def test_pipeline_of_tasks(self):
        """ping's pong feeds adder bound to signal 'a'."""
        kernel = RtosKernel()
        ping = EclCompiler().compile_text(PING).module("ping").reactor()
        adder_src = ADDER.replace("input int a", "input pure a") \
            .replace("acc = acc + a;", "acc = acc + 1;")
        adder = EclCompiler().compile_text(adder_src) \
            .module("adder").reactor()
        kernel.add_task(RtosTask("ping", ping, 2,
                                 bindings={"pong": "a"}))
        kernel.add_task(RtosTask("adder", adder, 1))
        kernel.start()
        kernel.post_input("kick")
        assert kernel.run_until_idle() == {"total": 1}
        kernel.post_input("kick")
        assert kernel.run_until_idle() == {"total": 2}

    def test_livelock_detected(self):
        looper = """
module looper (input pure go, output pure never)
{
    while (1) { await (go); while (1) { await (); } }
}
"""
        kernel = make_kernel((looper, "looper", "looper", 1))
        kernel.start()
        kernel.post_input("go")
        with pytest.raises(RtosError):
            kernel.run_until_idle(max_dispatches=100)

    def test_lost_event_counting(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        task = kernel.task("ping")
        task.deliver("kick")
        task.deliver("kick")  # second before any dispatch: lost
        kernel.run_until_idle()
        assert kernel.total_lost_events() == 1

    def test_add_task_after_start_rejected(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        reactor = EclCompiler().compile_text(PING).module("ping").reactor()
        with pytest.raises(RtosError):
            kernel.add_task(RtosTask("late", reactor, 1))

    def test_stats_dict_reports_network_lost_total(self):
        kernel = make_kernel((PING, "ping", "ping", 1))
        kernel.start()
        task = kernel.task("ping")
        task.deliver("kick")
        task.deliver("kick")
        kernel.run_until_idle()
        stats = kernel.stats_dict()
        assert stats["lost_events"] == 1
        assert stats["dispatches"] == kernel.stats.dispatches


def make_native_kernel(*sources_and_names):
    kernel = RtosKernel()
    for source, module_name, task_name, priority in sources_and_names:
        reactor = EclCompiler().compile_text(source) \
            .module(module_name).reactor(engine="native")
        kernel.add_task(RtosTask(task_name, reactor, priority))
    return kernel


class TestNativeTasks:
    """The slot-indexed fast dispatch path (native reactors)."""

    def test_fast_path_selected(self):
        kernel = make_native_kernel((PING, "ping", "ping", 1))
        assert kernel.tasks[0].uses_native_path
        classic = make_kernel((PING, "ping", "ping", 1))
        assert not classic.tasks[0].uses_native_path

    def test_event_to_external_output(self):
        kernel = make_native_kernel((PING, "ping", "ping", 1))
        kernel.start()
        kernel.post_input("kick")
        assert "pong" in kernel.run_until_idle()

    def test_valued_event(self):
        kernel = make_native_kernel((ADDER, "adder", "adder", 1))
        kernel.start()
        kernel.post_input("a", 5)
        assert kernel.run_until_idle() == {"total": 5}
        kernel.post_input("a", 7)
        assert kernel.run_until_idle() == {"total": 12}

    def test_self_trigger_cascade(self):
        kernel = make_native_kernel((DELTA, "stepper", "stepper", 1))
        kernel.start()
        kernel.post_input("go")
        assert "done" in kernel.run_until_idle()
        assert kernel.stats.self_triggers >= 2

    def test_stats_match_efsm_tasks(self):
        """Same stimulus, same kernel counters, either task engine."""
        def run(factory):
            kernel = factory((PING, "ping", "ping", 2),
                             (DELTA, "stepper", "stepper", 1))
            kernel.start()
            outputs = []
            for signal in ("kick", "go", "kick", "go", "kick"):
                kernel.post_input(signal)
                outputs.append(sorted(kernel.run_until_idle()))
            return outputs, kernel.stats.as_dict()

        efsm_out, efsm_stats = run(make_kernel)
        native_out, native_stats = run(make_native_kernel)
        assert efsm_out == native_out
        assert efsm_stats == native_stats

    def test_carrier_view(self):
        kernel = make_native_kernel((ADDER, "adder", "adder", 1))
        kernel.start()
        task = kernel.task("adder")
        task.deliver("a", 3)
        view = task.carrier("a")
        assert view.pending and view.value == 3
        assert view.post_count == 1 and view.lost_count == 0
        with pytest.raises(RtosError):
            task.carrier("nope")
