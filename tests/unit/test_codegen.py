"""Unit tests for the C/VHDL/Verilog back-ends and the glue bundle."""

import pytest

from repro.core import EclCompiler
from repro.errors import CodegenError

SCALAR = """
module blink (input pure tick, output pure led)
{
    while (1) {
        await (tick);
        emit (led);
        await (tick);
    }
}
"""

VALUED = """
module scale (input int x, output int y)
{
    int gain;
    gain = 3;
    while (1) {
        await (x);
        emit_v (y, x * gain + 1);
    }
}
"""

WITH_DATA_LOOP = """
module summer (input int x, output int s)
{
    int i;
    int acc;
    while (1) {
        await (x);
        for (i = 0, acc = 0; i < 4; i++) { acc = acc + x; }
        emit_v (s, acc);
    }
}
"""

WITH_STRUCT = """
typedef struct { int a; int b; } pair_t;
module pick (input pair_t p, output int a)
{
    while (1) { await (p); emit_v (a, p.a); }
}
"""


def module_of(src, name):
    return EclCompiler().compile_text(src).module(name)


class TestCBackend:
    def test_header_has_context_struct(self):
        bundle = module_of(SCALAR, "blink").c_code()
        assert "blink_ctx_t" in bundle.header
        assert "tick_present" in bundle.header
        assert "led_present" in bundle.header

    def test_source_has_react_and_reset(self):
        bundle = module_of(SCALAR, "blink").c_code()
        assert "void blink_reset(" in bundle.source
        assert "void blink_react(" in bundle.source
        assert "switch (ctx->__state)" in bundle.source

    def test_variables_redirected_to_ctx(self):
        bundle = module_of(VALUED, "scale").c_code()
        assert "ctx->gain" in bundle.source
        assert "ctx->x_value" in bundle.source
        assert "ctx->y_value" in bundle.source

    def test_data_loop_emitted_as_function(self):
        bundle = module_of(WITH_DATA_LOOP, "summer").c_code()
        assert "static void ecl_summer_data_1" in bundle.source
        assert "ecl_summer_data_1(ctx);" in bundle.source

    def test_struct_typedef_reproduced(self):
        bundle = module_of(WITH_STRUCT, "pick").c_code()
        assert "typedef struct" in bundle.header
        assert "pair_t" in bundle.header

    def test_every_state_has_case(self):
        module = module_of(SCALAR, "blink")
        bundle = module.c_code()
        for state in module.efsm().states:
            assert "case %d:" % state.index in bundle.source

    def test_reactions_exit_via_common_epilogue(self):
        bundle = module_of(SCALAR, "blink").c_code()
        assert "ecl_done:" in bundle.source
        assert "goto ecl_done;" in bundle.source

    def test_shared_subtrees_emitted_once(self):
        # The paper's protocol-stack product machine shares reaction
        # code between states; the back-end must emit it behind labels.
        from repro.designs import PROTOCOL_STACK_ECL
        from repro.core import EclCompiler
        design = EclCompiler().compile_text(PROTOCOL_STACK_ECL)
        source = design.module("toplevel").c_code().source
        assert "ecl_shared_0:" in source
        assert source.count("goto ecl_shared_0;") >= 2


class TestHardwareBackends:
    def test_verilog_for_scalar_design(self):
        text = module_of(SCALAR, "blink").verilog()
        assert "module blink (" in text
        assert "input wire tick_present" in text
        assert "output reg led_present" in text
        assert "endmodule" in text

    def test_vhdl_for_scalar_design(self):
        text = module_of(SCALAR, "blink").vhdl()
        assert "entity blink is" in text
        assert "architecture rtl of blink" in text

    def test_valued_signals_get_vectors(self):
        text = module_of(VALUED, "scale").verilog()
        assert "[31:0] x_value" in text
        assert "[31:0] y_value" in text

    def test_data_loop_refused(self):
        # "hardware only when the data-dominated C part is empty".
        with pytest.raises(CodegenError) as err:
            module_of(WITH_DATA_LOOP, "summer").verilog()
        assert "data" in str(err.value)

    def test_aggregate_signal_refused(self):
        with pytest.raises(CodegenError):
            module_of(WITH_STRUCT, "pick").vhdl()


class TestGlueBundle:
    def test_esterel_text_structure(self):
        glue = module_of(SCALAR, "blink").glue()
        assert glue.esterel_text.startswith("module blink:")
        assert "input tick;" in glue.esterel_text
        assert "await [tick]" in glue.esterel_text
        assert "emit led" in glue.esterel_text
        assert glue.esterel_text.rstrip().endswith("end module")

    def test_local_signals_declared_in_esterel(self):
        src = ("module m (input pure s, output pure t) {"
               " signal pure mid;"
               " while (1) { await(s); par { emit(mid);"
               " present (mid) emit(t); } } }")
        glue = module_of(src, "m").glue()
        assert "signal mid in" in glue.esterel_text

    def test_c_file_contains_data_functions(self):
        glue = module_of(WITH_DATA_LOOP, "summer").glue()
        assert "ecl_summer_data_1" in glue.c_text
        assert "ecl_summer_data_1" in glue.header_text

    def test_header_declares_valued_signals(self):
        glue = module_of(VALUED, "scale").glue()
        assert "x_value" in glue.header_text
        assert "y_value" in glue.header_text

    def test_user_functions_preserved_verbatim_shape(self):
        src = ("int helper(int a) { return a * 2; }\n"
               "module m (input int x, output int y) {"
               " while (1) { await(x); emit_v(y, helper(x)); } }")
        glue = module_of(src, "m").glue()
        assert "helper" in glue.c_text


class TestDotExport:
    def test_dot_shape(self):
        text = module_of(SCALAR, "blink").dot()
        assert text.startswith("digraph blink")
        assert "->" in text
        assert "led" in text
