"""Unit tests for the C expression/statement evaluator."""

import pytest

from repro.errors import EvalError
from repro.lang import BOOL, INT, parse_text
from repro.runtime import (
    AddressSpace,
    BuiltinFunction,
    Env,
    Evaluator,
    SignalSlot,
    call_function,
)


def eval_expr(text, setup="", variables=(), signals=(), functions=None):
    """Helper: declare variables, run setup statements, evaluate text."""
    src = "int f() { %s x = %s; return x; }" % (setup, text)
    table = SignalSlotTable(signals)
    env = Env(signal_resolver=table.get, functions=dict(functions or {}))
    program, _ = parse_text("int __probe() { return 0; }")
    evaluator = Evaluator(env)
    for name, ctype, value in variables:
        var = env.declare(name, ctype)
        if value is not None:
            var.store(value)
    stmts, _ = parse_text("void g() { %s r = (%s); }" % (setup, text),
                          run_preprocessor=False)
    # Simpler: parse a function and interpret it.
    program, _ = parse_text("int f() { %s return (%s); }" % (setup, text))
    return call_function(env, program.functions()[0], [])


class SignalSlotTable:
    def __init__(self, slots):
        self._slots = {s.name: s for s in slots}

    def get(self, name):
        return self._slots.get(name)


class TestArithmetic:
    def test_basic(self):
        assert eval_expr("2 + 3 * 4") == 14

    def test_division_truncates_toward_zero(self):
        assert eval_expr("-7 / 2") == -3
        assert eval_expr("7 / -2") == -3

    def test_remainder_sign(self):
        assert eval_expr("-7 % 2") == -1
        assert eval_expr("7 % -2") == 1

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            eval_expr("1 / 0")

    def test_int_overflow_wraps(self):
        assert eval_expr("2147483647 + 1") == -2147483648

    def test_shifts(self):
        assert eval_expr("1 << 4") == 16
        assert eval_expr("256 >> 4") == 16

    def test_bitwise(self):
        assert eval_expr("(0xF0 | 0x0F) & 0x3C ^ 1") == 0x3D

    def test_comparisons_yield_int(self):
        assert eval_expr("3 < 4") == 1
        assert eval_expr("3 == 4") == 0

    def test_logical_short_circuit(self):
        # Would divide by zero if not short-circuited.
        assert eval_expr("0 && (1 / 0)") == 0
        assert eval_expr("1 || (1 / 0)") == 1

    def test_unary(self):
        assert eval_expr("-5") == -5
        assert eval_expr("!3") == 0
        assert eval_expr("!0") == 1
        assert eval_expr("~0") == -1

    def test_ternary(self):
        assert eval_expr("1 ? 10 : 20") == 10
        assert eval_expr("0 ? 10 : 20") == 20

    def test_comma(self):
        assert eval_expr("(1, 2, 3)") == 3


class TestVariablesAndStatements:
    def run_func(self, body, args=(), src_prefix=""):
        program, _ = parse_text("%sint f() { %s }" % (src_prefix, body))
        env = Env(functions={f.name: f for f in program.functions()})
        return call_function(env, program.module_named if False else
                             program.functions()[-1], list(args))

    def test_local_declaration_and_assignment(self):
        assert self.run_func("int x; x = 5; return x + 1;") == 6

    def test_declaration_with_init(self):
        assert self.run_func("int x = 41; return x + 1;") == 42

    def test_uninitialized_is_zero(self):
        assert self.run_func("int x; return x;") == 0

    def test_char_wraps(self):
        assert self.run_func("char c = 200; return c;") == -56

    def test_unsigned_char_wraps(self):
        assert self.run_func("unsigned char c = 0; c = c - 1; return c;") == 255

    def test_compound_assignment(self):
        assert self.run_func("int x = 10; x += 5; x <<= 1; return x;") == 30

    def test_incdec(self):
        assert self.run_func("int i = 3; i++; ++i; i--; return i;") == 4

    def test_postfix_value(self):
        assert self.run_func("int i = 3; int j = i++; return j * 10 + i;") == 34

    def test_while_loop(self):
        assert self.run_func(
            "int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s;"
        ) == 10

    def test_for_loop(self):
        assert self.run_func(
            "int s = 0; int i; for (i = 1; i <= 4; i++) s += i; return s;"
        ) == 10

    def test_do_while(self):
        assert self.run_func(
            "int i = 0; do { i++; } while (i < 3); return i;") == 3

    def test_break_continue(self):
        assert self.run_func(
            "int s = 0; int i; for (i = 0; i < 10; i++) {"
            " if (i == 5) break; if (i % 2) continue; s += i; } return s;"
        ) == 6

    def test_nested_scopes_shadowing(self):
        assert self.run_func(
            "int x = 1; { int x = 2; } return x;") == 1

    def test_arrays(self):
        assert self.run_func(
            "int a[4]; int i; for (i = 0; i < 4; i++) a[i] = i * i;"
            " return a[3];") == 9

    def test_array_out_of_bounds(self):
        with pytest.raises(EvalError):
            self.run_func("int a[4]; return a[4];")

    def test_struct_members(self):
        assert self.run_func(
            "pair_t p; p.a = 3; p.b = 4; return p.a * p.b;",
            src_prefix="typedef struct { int a; int b; } pair_t;\n") == 12

    def test_union_aliasing_runtime(self):
        assert self.run_func(
            "u_t u; u.word = 0x01020304; return u.bytes[0];",
            src_prefix="typedef union { unsigned int word;"
                       " unsigned char bytes[4]; } u_t;\n") == 4

    def test_aggregate_cast_to_int(self):
        # Figure 2's (int) inpkt.cooked.crc pattern.
        assert self.run_func(
            "c_t c; c.b[0] = 0x34; c.b[1] = 0x12; return (short) c;",
            src_prefix="typedef struct { unsigned char b[2]; } c_t;\n"
        ) == 0x1234

    def test_paper_crc_loop(self):
        body = (
            "unsigned char pkt[8]; unsigned int crc = 0; int i;"
            "for (i = 0; i < 8; i++) pkt[i] = i + 1;"
            "for (i = 0; i < 8; i++) crc = (crc ^ pkt[i]) << 1;"
            "return crc;"
        )
        expected = 0
        data = [i + 1 for i in range(8)]
        for byte in data:
            expected = ((expected ^ byte) << 1) & 0xFFFFFFFF
        assert self.run_func(body) == expected


class TestPointers:
    def run_func(self, body, src_prefix=""):
        program, _ = parse_text("%sint f() { %s }" % (src_prefix, body))
        env = Env(functions={f.name: f for f in program.functions()})
        return call_function(env, program.functions()[-1], [])

    def test_address_of_and_deref(self):
        assert self.run_func("int x = 5; int *p; p = &x; *p = 7; return x;") == 7

    def test_pointer_arithmetic(self):
        assert self.run_func(
            "int a[4]; int *p; a[2] = 9; p = a; return *(p + 2);") == 9

    def test_function_with_pointer_param(self):
        src = "void bump(int *p) { *p = *p + 1; }\n"
        assert self.run_func(
            "int x = 1; bump(&x); bump(&x); return x;", src_prefix=src) == 3

    def test_array_decay_to_function(self):
        src = "int sum(int a[], int n) { int s = 0; int i;" \
              " for (i = 0; i < n; i++) s += a[i]; return s; }\n"
        assert self.run_func(
            "int v[3]; v[0] = 1; v[1] = 2; v[2] = 3; return sum(v, 3);",
            src_prefix=src) == 6

    def test_null_deref_caught(self):
        with pytest.raises(EvalError):
            self.run_func("int *p; p = 0; return *p;")


class TestFunctions:
    def test_recursion(self):
        src = "int fact(int n) { if (n <= 1) return 1;" \
              " return n * fact(n - 1); }\nint f() { return fact(6); }"
        program, _ = parse_text(src)
        env = Env(functions={f.name: f for f in program.functions()})
        assert call_function(env, program.functions()[-1], []) == 720

    def test_missing_return_defaults_to_zero(self):
        program, _ = parse_text("int f() { }")
        env = Env(functions={})
        assert call_function(env, program.functions()[0], []) == 0

    def test_wrong_arity(self):
        program, _ = parse_text("int f(int a) { return a; }")
        env = Env(functions={})
        with pytest.raises(EvalError):
            call_function(env, program.functions()[0], [1, 2])

    def test_builtin_function(self):
        program, _ = parse_text("int f() { return twice(21); }")
        env = Env(functions={
            "twice": BuiltinFunction("twice", INT, lambda v: v * 2),
            "f": program.functions()[0]})
        assert call_function(env, program.functions()[0], []) == 42

    def test_unknown_function(self):
        program, _ = parse_text("int f() { return nope(); }")
        env = Env(functions={})
        with pytest.raises(EvalError):
            call_function(env, program.functions()[0], [])


class TestSignalValueReads:
    def test_signal_value_in_expression(self):
        space = AddressSpace()
        slot = SignalSlot("level", INT, space)
        slot.store(40)
        program, _ = parse_text("int f() { return level + 2; }")
        env = Env(space=space, functions={},
                  signal_resolver={"level": slot}.get)
        assert call_function(env, program.functions()[0], []) == 42

    def test_bool_signal_tilde_is_logical_not(self):
        # Figure 3: if (~crc_ok) ...
        space = AddressSpace()
        slot = SignalSlot("crc_ok", BOOL, space)
        slot.store(1)
        program, _ = parse_text("int f() { return ~crc_ok; }")
        env = Env(space=space, functions={},
                  signal_resolver={"crc_ok": slot}.get)
        assert call_function(env, program.functions()[0], []) == 0
        slot.store(0)
        assert call_function(env, program.functions()[0], []) == 1

    def test_pure_signal_value_read_rejected(self):
        space = AddressSpace()
        slot = SignalSlot("go", __import__("repro.lang.types",
                                           fromlist=["PURE"]).PURE, space)
        program, _ = parse_text("int f() { return go; }")
        env = Env(space=space, functions={},
                  signal_resolver={"go": slot}.get)
        with pytest.raises(EvalError):
            call_function(env, program.functions()[0], [])


class TestOperationCounting:
    def test_counter_sees_operations(self):
        class Counter:
            def __init__(self):
                self.counts = {}

            def count(self, kind, amount=1):
                self.counts[kind] = self.counts.get(kind, 0) + amount

        counter = Counter()
        program, _ = parse_text(
            "int f() { int s = 0; int i;"
            " for (i = 0; i < 10; i++) s += i; return s; }")
        env = Env(functions={}, counter=counter)
        call_function(env, program.functions()[0], [])
        assert counter.counts.get("alu", 0) > 0
        assert counter.counts.get("branch", 0) >= 10
        assert counter.counts.get("mem", 0) > 0
