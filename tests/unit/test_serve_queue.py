"""Unit tests for the serving layer's intake: JobQueue + WorkerPool."""

import threading
from time import monotonic

import pytest

from repro.errors import EclError
from repro.serve import (JobQueue, QueueEntry, QueueFullError,
                         TenantQuotaError, WorkerPool, backoff_delay)


def entries_of(queue):
    out = []
    while True:
        entry = queue.get(timeout=0)
        if entry is None:
            return out
        out.append(entry)


class TestJobQueue:
    def test_fifo_within_one_priority(self):
        queue = JobQueue(depth=8)
        queue.put_batch(["a", "b", "c"])
        assert [e.job for e in entries_of(queue)] == ["a", "b", "c"]

    def test_higher_priority_dequeues_first(self):
        queue = JobQueue(depth=8)
        queue.put_batch(["low"], priority=0)
        queue.put_batch(["high"], priority=5)
        queue.put_batch(["mid"], priority=2)
        assert [e.job for e in entries_of(queue)] == ["high", "mid", "low"]

    def test_admission_is_atomic_all_or_nothing(self):
        queue = JobQueue(depth=4)
        queue.put_batch(["a", "b", "c"])
        with pytest.raises(QueueFullError, match="queue_full"):
            queue.put_batch(["d", "e"])  # 3 + 2 > 4
        # the oversized batch left nothing behind
        assert len(queue) == 3
        assert queue.stats_dict()["rejected"] == 2
        # a batch that fits is still admitted after a rejection
        queue.put_batch(["d"])
        assert len(queue) == 4

    def test_requeue_bypasses_depth_and_keeps_place_in_line(self):
        queue = JobQueue(depth=2)
        (first, second) = queue.put_batch(["a", "b"])
        got = queue.get(timeout=0)
        assert got is first
        # the queue is at depth again after the requeue (2 entries),
        # yet requeue never rejects — its admission already paid.
        assert queue.requeue(got)
        assert len(queue) == 2
        # the retried entry keeps its original (earlier) sequence
        # number, so it dequeues before later arrivals.
        assert queue.get(timeout=0) is got
        assert queue.get(timeout=0) is second

    def test_get_blocks_until_put(self):
        queue = JobQueue(depth=4)
        seen = []

        def getter():
            seen.append(queue.get(timeout=5))

        thread = threading.Thread(target=getter)
        thread.start()
        queue.put_batch(["x"])
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen[0].job == "x"

    def test_close_wakes_getters_and_stops_admission(self):
        queue = JobQueue(depth=4)
        results = []

        def getter():
            results.append(queue.get(timeout=10))

        thread = threading.Thread(target=getter)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert results == [None]
        with pytest.raises(EclError, match="closed"):
            queue.put_batch(["x"])
        assert queue.requeue(QueueEntry.make("x")) is False

    def test_drain_empties_in_priority_order(self):
        queue = JobQueue(depth=8)
        queue.put_batch(["low"], priority=0)
        queue.put_batch(["high"], priority=9)
        drained = queue.drain()
        assert [e.job for e in drained] == ["high", "low"]
        assert len(queue) == 0

    def test_bad_depth_rejected(self):
        with pytest.raises(EclError, match="depth"):
            JobQueue(depth=0)

    def test_force_put_bypasses_depth_bound(self):
        queue = JobQueue(depth=2)
        queue.put_batch(["a", "b"])
        with pytest.raises(QueueFullError):
            queue.put_batch(["c"])
        # recovery re-admission: the original admission already paid
        # the backpressure toll, so force never rejects.
        queue.put_batch(["c", "d"], force=True)
        assert len(queue) == 4

    def test_backing_off_entry_does_not_block_ready_ones(self):
        queue = JobQueue(depth=8)
        (retry,) = queue.put_batch(["retry"], priority=9)
        queue.put_batch(["ready"], priority=0)
        queue.get(timeout=0)  # pop the high-priority entry...
        retry.not_before = monotonic() + 30.0
        assert queue.requeue(retry)
        # ...requeued with a far-future backoff: despite its better
        # priority it must not starve the eligible entry behind it.
        got = queue.get(timeout=0.2)
        assert got is not None and got.job == "ready"
        assert queue.get(timeout=0) is None  # retry still backing off
        assert len(queue) == 1  # and still queued, not lost

    def test_getter_sleeps_until_backoff_matures(self):
        queue = JobQueue(depth=8)
        (entry,) = queue.put_batch(["x"])
        entry.not_before = monotonic() + 0.1
        assert queue.requeue(entry)
        started = monotonic()
        got = queue.get(timeout=5)
        assert got is entry
        assert monotonic() - started >= 0.08

    def test_requeue_dequeues_ahead_of_many_later_arrivals(self):
        """The retried entry's original sequence number beats every
        arrival that was admitted after it — retries of old work are
        never penalized, however deep the queue has grown since."""
        queue = JobQueue(depth=256)
        (victim,) = queue.put_batch(["victim"])
        assert queue.get(timeout=0) is victim
        queue.put_batch(["later-%d" % i for i in range(16)])
        assert queue.requeue(victim)
        assert queue.get(timeout=0) is victim

    def test_concurrent_drain_with_requeue_loses_nothing(self):
        """Four workers drain while the retry lands mid-flight: the
        retried entry is neither lost nor duplicated, and every other
        entry still drains exactly once."""
        queue = JobQueue(depth=256)
        (victim,) = queue.put_batch(["victim"])
        queue.put_batch(["later-%d" % i for i in range(32)])
        assert queue.get(timeout=0) is victim
        barrier = threading.Barrier(5)
        drained = []
        lock = threading.Lock()

        def drain():
            barrier.wait()
            while True:
                entry = queue.get(timeout=0.5)
                if entry is None:
                    return
                with lock:
                    drained.append(entry)

        def put_back():
            barrier.wait()
            queue.requeue(victim)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        threads.append(threading.Thread(target=put_back))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(drained) == 33
        assert len(set(id(e) for e in drained)) == 33  # no duplicates
        assert victim in drained  # the retry was not lost
        assert len(queue) == 0


class TestWeightedFairness:
    """The deficit-round-robin rotation across tenant lanes."""

    def test_backlogged_tenant_cannot_starve_another(self):
        """Fifty queued heavy-tenant jobs, one light-tenant job: the
        light job dequeues within the first rotation turn, not after
        the heavy backlog drains."""
        queue = JobQueue(depth=256)
        queue.put_batch(["heavy-%d" % i for i in range(50)],
                        tenant="heavy")
        queue.put_batch(["light"], tenant="light")
        order = [e.job for e in entries_of(queue)]
        assert order.index("light") <= 1
        assert len(order) == 51

    def test_priority_cannot_cross_tenant_lanes(self):
        """Priority orders within a tenant; the rotation — not
        priority — decides between tenants, so a tenant cannot jump
        the ring by inflating its priorities."""
        queue = JobQueue(depth=64)
        queue.put_batch(["a-hi"], tenant="a", priority=9)
        queue.put_batch(["a-lo"], tenant="a", priority=0)
        queue.put_batch(["b"], tenant="b", priority=0)
        order = [e.job for e in entries_of(queue)]
        assert order.index("a-hi") < order.index("a-lo")
        assert order.index("b") <= 1  # one turn, despite priority 0

    def test_weights_split_dequeues_proportionally(self):
        """Weight 3 vs weight 1 with deep backlogs on both sides: the
        first dequeues split ~3:1 (exactly 3:1 per full rotation)."""
        queue = JobQueue(depth=256,
                         tenant_weights={"gold": 3.0, "basic": 1.0})
        queue.put_batch(["g%d" % i for i in range(30)], tenant="gold")
        queue.put_batch(["b%d" % i for i in range(30)], tenant="basic")
        first = [queue.get(timeout=0).job for _ in range(20)]
        gold = sum(1 for job in first if job.startswith("g"))
        assert gold == 15  # 3 of every 4

    def test_fractional_weight_accumulates_credit(self):
        """A weight-0.5 lane dequeues once per two turns — held back,
        never locked out."""
        queue = JobQueue(depth=256,
                         tenant_weights={"slow": 0.5, "fast": 1.0})
        queue.put_batch(["s%d" % i for i in range(8)], tenant="slow")
        queue.put_batch(["f%d" % i for i in range(8)], tenant="fast")
        first = [queue.get(timeout=0).job for _ in range(12)]
        slow = sum(1 for job in first if job.startswith("s"))
        assert 3 <= slow <= 5
        # and the slow lane fully drains once the fast one is empty
        rest = [e.job for e in entries_of(queue)]
        assert len(first) + len(rest) == 16

    def test_single_tenant_degenerates_to_strict_priority(self):
        queue = JobQueue(depth=64, tenant_weights={"default": 2.0})
        queue.put_batch(["lo"], priority=0)
        queue.put_batch(["hi"], priority=5)
        queue.put_batch(["mid"], priority=2)
        assert [e.job for e in entries_of(queue)] == ["hi", "mid", "lo"]

    def test_set_tenant_weight_validates_and_applies(self):
        queue = JobQueue(depth=8)
        with pytest.raises(EclError, match="weight"):
            queue.set_tenant_weight("t", 0)
        queue.put_batch(["x"], tenant="t")
        queue.set_tenant_weight("t", 4.0)
        assert queue.stats_dict()["tenants"]["t"]["weight"] == 4.0


class TestTenantQuotas:
    def test_queued_quota_rejects_structured_and_atomic(self):
        queue = JobQueue(depth=64, max_queued_per_tenant=3)
        queue.put_batch(["a", "b"], tenant="greedy")
        with pytest.raises(TenantQuotaError, match="tenant_quota"):
            queue.put_batch(["c", "d"], tenant="greedy")  # 2 + 2 > 3
        # structured: a TenantQuotaError IS a QueueFullError (the 429
        # backpressure contract), distinguishable by type.
        assert issubclass(TenantQuotaError, QueueFullError)
        # atomic: the rejected batch left nothing behind...
        assert len(queue) == 2
        stats = queue.stats_dict()
        assert stats["quota_rejected"] == 2
        # ...and another tenant is untouched by the greedy one's quota
        queue.put_batch(["x", "y", "z"], tenant="modest")
        assert len(queue) == 5

    def test_quota_bypassed_by_force_and_requeue(self):
        queue = JobQueue(depth=64, max_queued_per_tenant=1)
        (entry,) = queue.put_batch(["a"], tenant="t")
        # recovery re-admission bypasses the quota
        queue.put_batch(["b"], tenant="t", force=True)
        assert queue.get(timeout=0) is entry
        # a worker-death retry bypasses it too
        assert queue.requeue(entry)
        assert len(queue) == 2

    def test_in_flight_cap_gates_lane_without_blocking_others(self):
        queue = JobQueue(depth=64, max_in_flight_per_tenant=1)
        queue.put_batch(["t1-a", "t1-b"], tenant="t1")
        queue.put_batch(["t2-a"], tenant="t2")
        first = queue.get(timeout=0)
        assert first.job == "t1-a"
        # t1 is at its cap: its second entry is gated, t2's is not
        assert queue.get(timeout=0).job == "t2-a"
        assert queue.get(timeout=0.05) is None
        assert len(queue) == 1  # gated, not lost
        # task_done(entry) releases the lane (and wakes waiters)
        queue.task_done(first)
        assert queue.get(timeout=1).job == "t1-b"

    def test_in_flight_release_wakes_blocked_getter(self):
        queue = JobQueue(depth=64, max_in_flight_per_tenant=1)
        queue.put_batch(["a", "b"], tenant="t")
        held = queue.get(timeout=0)
        got = []

        def getter():
            got.append(queue.get(timeout=5))

        thread = threading.Thread(target=getter)
        thread.start()
        queue.task_done(held)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got[0].job == "b"


class TestTakeMatching:
    def test_takes_matching_same_lane_entries_up_to_limit(self):
        queue = JobQueue(depth=64)
        queue.put_batch(["v1", "v2", "s1", "v3"], tenant="t")
        queue.put_batch(["other-v"], tenant="other")
        lead = queue.get(timeout=0)
        assert lead.job == "v1"
        taken = queue.take_matching(
            lead, lambda job: job.startswith("v"), limit=8)
        # same lane only, matching only, lane order preserved
        assert [e.job for e in taken] == ["v2", "v3"]
        assert queue.stats_dict()["in_flight"] == 3
        for entry in taken:
            queue.task_done(entry)
        queue.task_done(lead)
        # rotation hands the turn to the other tenant after the lead
        # pop; the skipped same-lane entry follows.
        assert [e.job for e in entries_of(queue)] == ["other-v", "s1"]

    def test_limit_and_backoff_respected(self):
        queue = JobQueue(depth=64)
        entries = queue.put_batch(["v1", "v2", "v3", "v4"])
        lead = queue.get(timeout=0)
        entries[2].not_before = monotonic() + 30.0  # v3 backing off
        taken = queue.take_matching(lead, lambda job: True, limit=1)
        assert [e.job for e in taken] == ["v2"]
        taken = queue.take_matching(lead, lambda job: True, limit=8)
        assert [e.job for e in taken] == ["v4"]  # v3 skipped, kept
        assert len(queue) == 1

    def test_respects_in_flight_quota(self):
        queue = JobQueue(depth=64, max_in_flight_per_tenant=2)
        queue.put_batch(["v1", "v2", "v3"], tenant="t")
        lead = queue.get(timeout=0)
        taken = queue.take_matching(lead, lambda job: True, limit=8)
        # lead holds one in-flight slot; only one companion fits
        assert [e.job for e in taken] == ["v2"]


class TestBackoffDelay:
    def test_deterministic_and_exponential(self):
        first = backoff_delay("job-a", 1)
        assert first == backoff_delay("job-a", 1)  # pure function
        assert backoff_delay("job-a", 1) != backoff_delay("job-b", 1)
        assert backoff_delay("job-a", 0) == 0.0
        # base growth dominates the +-50% jitter band
        assert backoff_delay("job-a", 4) > backoff_delay("job-a", 1)

    def test_jitter_stays_in_band_and_cap_holds(self):
        for attempt in range(1, 12):
            delay = backoff_delay("k", attempt, base=0.02, cap=2.0)
            assert delay <= 2.0
            assert delay >= min(2.0, 0.02 * (2 ** (attempt - 1)))


class TestWorkerPool:
    def make_pool(self, workers=2, max_attempts=3, depth=64):
        queue = JobQueue(depth=depth)
        done = []
        dead = []
        lock = threading.Lock()

        def execute(entry):
            with lock:
                done.append(entry.job)

        def on_dead(entry, error):
            with lock:
                dead.append((entry.job, error))

        pool = WorkerPool(queue, execute, on_dead_job=on_dead,
                          workers=workers, max_attempts=max_attempts)
        return queue, pool, done, dead

    def stop(self, queue, pool):
        queue.close()
        pool.join(timeout=5)

    def test_executes_every_queued_job(self):
        queue, pool, done, _dead = self.make_pool()
        queue.put_batch(list(range(20)))
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        assert sorted(done) == list(range(20))
        assert pool.stats_dict()["jobs_executed"] == 20

    def test_worker_death_retries_then_succeeds(self):
        queue, pool, done, dead = self.make_pool(workers=1)
        crashes = {"left": 2}

        def fault(entry):
            if entry.job == "fragile" and crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("injected worker crash")

        pool.fault_hook = fault
        queue.put_batch(["fragile", "solid"])
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        # two crashes burned two attempts; the third (== max_attempts)
        # succeeded, and the healthy job was never lost.
        assert sorted(done) == ["fragile", "solid"]
        assert dead == []
        assert pool.stats_dict()["worker_deaths"] == 2
        # each death spawned a replacement thread
        assert pool.stats_dict()["spawned"] == 3

    def test_retry_budget_exhaustion_reports_dead_job(self):
        queue, pool, done, dead = self.make_pool(workers=1, max_attempts=2)

        def fault(entry):
            if entry.job == "doomed":
                raise RuntimeError("always crashes")

        pool.fault_hook = fault
        queue.put_batch(["doomed", "fine"])
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        assert done == ["fine"]
        assert len(dead) == 1
        assert dead[0][0] == "doomed"
        assert "worker died (2 attempt(s))" in dead[0][1]

    def test_wait_idle_times_out_when_work_remains(self):
        queue, pool, _done, _dead = self.make_pool(workers=1)
        queue.put_batch(["never-run"])
        # pool not started: the queue stays non-empty
        assert pool.wait_idle(timeout=0.2) is False

    def test_exhaustion_under_concurrent_workers_reports_once(self):
        """A poison job crashing four concurrent workers is reported
        dead exactly once after max_attempts, and every healthy job
        around it still executes exactly once."""
        queue, pool, done, dead = self.make_pool(workers=4,
                                                 max_attempts=3)

        def fault(entry):
            if entry.job == "poison":
                raise RuntimeError("always crashes")

        pool.fault_hook = fault
        queue.put_batch(["poison"] + ["ok-%d" % i for i in range(20)])
        pool.start()
        assert pool.wait_idle(timeout=20)
        self.stop(queue, pool)
        assert sorted(done) == sorted("ok-%d" % i for i in range(20))
        assert len(dead) == 1
        assert dead[0][0] == "poison"
        assert "worker died (3 attempt(s))" in dead[0][1]
        assert pool.stats_dict()["worker_deaths"] == 3

    def test_retry_carries_backoff_not_before(self):
        """The second attempt arrives with a future not_before set by
        the deterministic backoff — the retry waited, the first
        attempt did not."""
        queue, pool, _done, _dead = self.make_pool(workers=1)
        seen = []
        crashes = {"left": 1}

        def fault(entry):
            seen.append((entry.attempts, entry.not_before, monotonic()))
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("injected")

        pool.fault_hook = fault
        queue.put_batch(["x"])
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        assert [attempts for attempts, _, _ in seen] == [0, 1]
        first, retry = seen
        assert first[1] == 0.0
        assert retry[1] > 0.0  # backoff scheduled...
        assert retry[2] >= retry[1]  # ...and honored by the queue
