"""Unit tests for the serving layer's intake: JobQueue + WorkerPool."""

import threading

import pytest

from repro.errors import EclError
from repro.serve import JobQueue, QueueEntry, QueueFullError, WorkerPool


def entries_of(queue):
    out = []
    while True:
        entry = queue.get(timeout=0)
        if entry is None:
            return out
        out.append(entry)


class TestJobQueue:
    def test_fifo_within_one_priority(self):
        queue = JobQueue(depth=8)
        queue.put_batch(["a", "b", "c"])
        assert [e.job for e in entries_of(queue)] == ["a", "b", "c"]

    def test_higher_priority_dequeues_first(self):
        queue = JobQueue(depth=8)
        queue.put_batch(["low"], priority=0)
        queue.put_batch(["high"], priority=5)
        queue.put_batch(["mid"], priority=2)
        assert [e.job for e in entries_of(queue)] == ["high", "mid", "low"]

    def test_admission_is_atomic_all_or_nothing(self):
        queue = JobQueue(depth=4)
        queue.put_batch(["a", "b", "c"])
        with pytest.raises(QueueFullError, match="queue_full"):
            queue.put_batch(["d", "e"])  # 3 + 2 > 4
        # the oversized batch left nothing behind
        assert len(queue) == 3
        assert queue.stats_dict()["rejected"] == 2
        # a batch that fits is still admitted after a rejection
        queue.put_batch(["d"])
        assert len(queue) == 4

    def test_requeue_bypasses_depth_and_keeps_place_in_line(self):
        queue = JobQueue(depth=2)
        (first, second) = queue.put_batch(["a", "b"])
        got = queue.get(timeout=0)
        assert got is first
        # the queue is at depth again after the requeue (2 entries),
        # yet requeue never rejects — its admission already paid.
        assert queue.requeue(got)
        assert len(queue) == 2
        # the retried entry keeps its original (earlier) sequence
        # number, so it dequeues before later arrivals.
        assert queue.get(timeout=0) is got
        assert queue.get(timeout=0) is second

    def test_get_blocks_until_put(self):
        queue = JobQueue(depth=4)
        seen = []

        def getter():
            seen.append(queue.get(timeout=5))

        thread = threading.Thread(target=getter)
        thread.start()
        queue.put_batch(["x"])
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen[0].job == "x"

    def test_close_wakes_getters_and_stops_admission(self):
        queue = JobQueue(depth=4)
        results = []

        def getter():
            results.append(queue.get(timeout=10))

        thread = threading.Thread(target=getter)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert results == [None]
        with pytest.raises(EclError, match="closed"):
            queue.put_batch(["x"])
        assert queue.requeue(QueueEntry.make("x")) is False

    def test_drain_empties_in_priority_order(self):
        queue = JobQueue(depth=8)
        queue.put_batch(["low"], priority=0)
        queue.put_batch(["high"], priority=9)
        drained = queue.drain()
        assert [e.job for e in drained] == ["high", "low"]
        assert len(queue) == 0

    def test_bad_depth_rejected(self):
        with pytest.raises(EclError, match="depth"):
            JobQueue(depth=0)


class TestWorkerPool:
    def make_pool(self, workers=2, max_attempts=3, depth=64):
        queue = JobQueue(depth=depth)
        done = []
        dead = []
        lock = threading.Lock()

        def execute(entry):
            with lock:
                done.append(entry.job)

        def on_dead(entry, error):
            with lock:
                dead.append((entry.job, error))

        pool = WorkerPool(queue, execute, on_dead_job=on_dead,
                          workers=workers, max_attempts=max_attempts)
        return queue, pool, done, dead

    def stop(self, queue, pool):
        queue.close()
        pool.join(timeout=5)

    def test_executes_every_queued_job(self):
        queue, pool, done, _dead = self.make_pool()
        queue.put_batch(list(range(20)))
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        assert sorted(done) == list(range(20))
        assert pool.stats_dict()["jobs_executed"] == 20

    def test_worker_death_retries_then_succeeds(self):
        queue, pool, done, dead = self.make_pool(workers=1)
        crashes = {"left": 2}

        def fault(entry):
            if entry.job == "fragile" and crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("injected worker crash")

        pool.fault_hook = fault
        queue.put_batch(["fragile", "solid"])
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        # two crashes burned two attempts; the third (== max_attempts)
        # succeeded, and the healthy job was never lost.
        assert sorted(done) == ["fragile", "solid"]
        assert dead == []
        assert pool.stats_dict()["worker_deaths"] == 2
        # each death spawned a replacement thread
        assert pool.stats_dict()["spawned"] == 3

    def test_retry_budget_exhaustion_reports_dead_job(self):
        queue, pool, done, dead = self.make_pool(workers=1, max_attempts=2)

        def fault(entry):
            if entry.job == "doomed":
                raise RuntimeError("always crashes")

        pool.fault_hook = fault
        queue.put_batch(["doomed", "fine"])
        pool.start()
        assert pool.wait_idle(timeout=10)
        self.stop(queue, pool)
        assert done == ["fine"]
        assert len(dead) == 1
        assert dead[0][0] == "doomed"
        assert "worker died (2 attempt(s))" in dead[0][1]

    def test_wait_idle_times_out_when_work_remains(self):
        queue, pool, _done, _dead = self.make_pool(workers=1)
        queue.put_batch(["never-run"])
        # pool not started: the queue stays non-empty
        assert pool.wait_idle(timeout=0.2) is False
