"""Unit tests for VCD export and RTOS execution tracing."""

import pytest

from repro.core import EclCompiler
from repro.rtos import RtosKernel, RtosTask, TraceRecorder
from repro.runtime import VcdRecorder, record_run

BLINK = """
module blink (input pure tick, output pure led)
{
    while (1) { await (tick); emit (led); await (tick); }
}
"""

SCALE = """
module scale (input int x, output int y)
{
    while (1) { await (x); emit_v (y, x * 2); }
}
"""


class TestVcd:
    def reactor(self, src, name):
        return EclCompiler().compile_text(src).module(name).reactor()

    def test_header_declares_signals(self):
        reactor = self.reactor(BLINK, "blink")
        recorder = VcdRecorder.for_reactor(reactor)
        text = recorder.render()
        assert "$timescale" in text
        assert "$var wire 1" in text
        assert "tick" in text and "led" in text
        assert "$enddefinitions $end" in text

    def test_changes_recorded_per_instant(self):
        reactor = self.reactor(BLINK, "blink")
        stimulus = [{}, {"tick": None}, {}, {"tick": None}]
        outputs, text = record_run(reactor, stimulus)
        # led pulses on the 2nd instant (first tick after start-up).
        assert any("led" in " ".join(sorted(o.emitted)) or
                   "led" in o.emitted for o in outputs)
        # Time markers for the changing instants exist.
        assert "#1" in text
        assert text.strip().endswith("#4")

    def test_valued_signal_gets_vector(self):
        reactor = self.reactor(SCALE, "scale")
        recorder = VcdRecorder.for_reactor(reactor)
        assert any(line.startswith("$var wire 32")
                   for line in recorder.render().splitlines())

    def test_value_changes_dumped(self):
        reactor = self.reactor(SCALE, "scale")
        _outputs, text = record_run(
            reactor, [{}, {"x": 21}, {}, {"x": 5}])
        assert "b101010 " in text  # 42 in binary
        assert "b1010 " in text    # 10 in binary

    def test_no_redundant_changes(self):
        reactor = self.reactor(BLINK, "blink")
        _outputs, text = record_run(reactor, [{}, {}, {}, {}])
        # No inputs, no outputs: after dumpvars there are no 1-changes.
        body = text.split("$end", 3)[-1]
        assert "1" not in [line[0] for line in body.splitlines()
                           if line and line[0] in "01"]


class TestTraceRecorder:
    def make_kernel(self):
        kernel = RtosKernel()
        reactor = EclCompiler().compile_text(BLINK) \
            .module("blink").reactor()
        kernel.add_task(RtosTask("blink", reactor, 1))
        recorder = TraceRecorder().attach(kernel)
        kernel.start()
        return kernel, recorder

    def test_dispatches_recorded(self):
        kernel, recorder = self.make_kernel()
        kernel.post_input("tick")
        kernel.run_until_idle()
        assert recorder.per_task_counts()["blink"] >= 2

    def test_posts_recorded(self):
        kernel, recorder = self.make_kernel()
        kernel.post_input("tick")
        kernel.run_until_idle()
        posts = [e for e in recorder.events if e.kind == "post"]
        assert any(e.signal == "tick" for e in posts)

    def test_emissions_in_dispatch_events(self):
        kernel, recorder = self.make_kernel()
        kernel.post_input("tick")
        kernel.run_until_idle()
        assert any("led" in e.emitted for e in recorder.dispatches())

    def test_timeline_render(self):
        kernel, recorder = self.make_kernel()
        for _ in range(3):
            kernel.post_input("tick")
            kernel.run_until_idle()
        timeline = recorder.timeline()
        assert "blink" in timeline
        assert "#" in timeline

    def test_log_render(self):
        kernel, recorder = self.make_kernel()
        kernel.post_input("tick")
        kernel.run_until_idle()
        log = recorder.log()
        assert "dispatch blink" in log
        assert "post tick" in log

    def test_double_attach_rejected(self):
        kernel, recorder = self.make_kernel()
        with pytest.raises(RuntimeError):
            recorder.attach(kernel)
