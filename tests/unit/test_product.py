"""Unit tests for post-hoc synchronous product exploration."""

import pytest

from repro.core import EclCompiler
from repro.efsm import Connection, product_reachable_size
from repro.errors import CompileError

PING = """
module ping (input pure kick, output pure out_a)
{
    while (1) { await (kick); emit (out_a); await (kick); }
}
"""

PONG = """
module pong (input pure in_a, output pure out_b)
{
    while (1) { await (in_a); emit (out_b); }
}
"""


def efsm_of(src, name):
    return EclCompiler().compile_text(src).module(name).efsm()


class TestProductSize:
    def test_independent_machines_multiply(self):
        # Two copies of ping driven by *different* inputs: every state
        # pair is reachable.
        a = efsm_of(PING, "ping")
        b = efsm_of(PING.replace("kick", "kick2")
                        .replace("out_a", "out_c"), "ping")
        info = product_reachable_size([Connection(a), Connection(b)])
        # Both machines leave their start-up state in the same instant,
        # so the joint space is that shared transient plus the full
        # cross product of the steady-state cycles.
        steady = (a.state_count - 1) * (b.state_count - 1)
        assert info.reachable_states == 1 + steady
        assert info.sum_states == a.state_count + b.state_count
        assert info.product_bound == a.state_count * b.state_count

    def test_pipeline_constrains_product(self):
        # pong only moves when ping feeds it: fewer joint states than
        # the full product bound.
        a = efsm_of(PING, "ping")
        b = efsm_of(PONG, "pong")
        info = product_reachable_size([
            Connection(a),
            Connection(b, binding={"in_a": "out_a"}),
        ])
        assert info.reachable_states <= info.product_bound
        assert info.components == ("ping", "pong")

    def test_binding_renames_signals(self):
        a = efsm_of(PING, "ping")
        b = efsm_of(PONG, "pong")
        connection = Connection(b, binding={"in_a": "out_a"})
        assert connection.network_name("in_a") == "out_a"
        assert connection.network_name("out_b") == "out_b"

    def test_state_budget(self):
        a = efsm_of(PING, "ping")
        b = efsm_of(PING.replace("kick", "kick2")
                        .replace("out_a", "out_c"), "ping")
        with pytest.raises(CompileError):
            product_reachable_size([Connection(a), Connection(b)],
                                   max_states=2)

    def test_paper_stack_product_info(self):
        from repro.designs import PROTOCOL_STACK_ECL
        design = EclCompiler().compile_text(PROTOCOL_STACK_ECL)
        connections = [
            Connection(design.module("assemble").efsm(),
                       binding={"outpkt": "packet"}),
            Connection(design.module("checkcrc").efsm(),
                       binding={"inpkt": "packet"}),
            Connection(design.module("prochdr").efsm(),
                       binding={"inpkt": "packet"}),
        ]
        info = product_reachable_size(connections)
        # The joint exploration stays well under the naive bound and is
        # in the same range as the translator's inlined product (9).
        assert info.reachable_states <= info.product_bound
        assert info.reachable_states >= max(info.state_counts)
