"""Unit tests for the simulation farm: jobs, engines, workers, farm."""

import pytest

from repro.errors import EclError
from repro.farm import (
    ENGINE_NAMES,
    SimJob,
    SimulationFarm,
    StimulusSpec,
    WorkerState,
    expand_jobs,
)
from repro.farm.engines import build_engine, compare_records, make_record
from repro.farm.farm import FarmReport
from repro.farm.jobs import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TERMINATED,
    SimResult,
)

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""

ONCE = """
module once (input pure go, output pure done)
{
    await (go);
    emit (done);
}
"""

COUNTER = """
module counter (input pure tick, input unsigned char load,
                output int total)
{
    int n;
    n = 0;
    while (1) {
        await (tick | load);
        present (load) { n = load; } else { n = n + 1; }
        emit_v (total, n);
    }
}
"""

DESIGNS = {"echo": ECHO, "once": ONCE, "counter": COUNTER}


@pytest.fixture(scope="module")
def state():
    return WorkerState(DESIGNS)


def job(module="echo", design=None, engine="efsm", length=8, index=0,
        **kwargs):
    return SimJob(design=design or module, module=module, engine=engine,
                  stimulus=StimulusSpec.random(length=length),
                  index=index, **kwargs)


class TestJobModel:
    def test_job_id_is_deterministic_and_index_sensitive(self):
        a, b = job(index=1), job(index=1)
        assert a.job_id == b.job_id and a.seed == b.seed
        assert job(index=2).job_id != a.job_id
        assert job(index=2).seed != a.seed

    def test_salt_changes_identity(self):
        plain = job()
        salted = SimJob(design="echo", module="echo",
                        stimulus=StimulusSpec.random(length=8, salt=5))
        assert plain.job_id != salted.job_id

    def test_unknown_engine_rejected(self):
        with pytest.raises(EclError, match="unknown engine"):
            job(engine="quantum")

    def test_random_stimulus_is_seed_deterministic(self):
        spec = StimulusSpec.random(length=20)
        inputs = [("ping", True), ("load", False)]
        assert spec.materialize(inputs, 42) == \
            spec.materialize(inputs, 42)
        assert spec.materialize(inputs, 42) != \
            spec.materialize(inputs, 43)
        for instant in spec.materialize(inputs, 42):
            for name, value in instant.items():
                if name == "ping":
                    assert value is None
                else:
                    assert 0 <= value <= 255

    def test_explicit_stimulus_replays_verbatim(self):
        instants = [{"ping": None}, {}, {"load": 7}]
        spec = StimulusSpec.explicit(instants)
        assert spec.materialize([("ping", True)], 123) == instants
        assert "explicit:3" in spec.describe()

    def test_expand_jobs_matrix_and_indices(self):
        jobs = expand_jobs([("echo", "echo"), ("once", "once")],
                           engines=("efsm", "interp"), traces=3)
        assert len(jobs) == 2 * 2 * 3
        assert [j.index for j in jobs] == list(range(12))
        assert len({j.job_id for j in jobs}) == len(jobs)
        engines = {j.engine for j in jobs}
        assert engines == {"efsm", "interp"}


class TestEngines:
    def test_every_declared_engine_is_registered(self):
        from repro.errors import EngineUnavailable
        from repro.runtime.vector import NUMPY_AVAILABLE

        for name in ENGINE_NAMES:
            if name == "equivalence":
                continue
            if name == "vector" and not NUMPY_AVAILABLE:
                # Registered, but degrades without the optional numpy.
                with pytest.raises(EngineUnavailable):
                    build_engine(name, WorkerState(DESIGNS).handles("echo"),
                                 job())
                continue
            build_engine(name, WorkerState(DESIGNS).handles("echo"),
                         job())

    def test_unknown_engine_name(self, state):
        with pytest.raises(EclError, match="unknown engine"):
            build_engine("nope", state.handles("echo"), job())

    def test_step_records_are_json_plain(self, state):
        engine = build_engine("efsm", state.handles("echo"), job())
        # Instant 1 is the start-up instant (non-immediate await), so
        # the first ping only arms the loop; the second one answers.
        assert engine.step({"ping": None})["emitted"] == []
        record = engine.step({"ping": None})
        assert record == {"inputs": {"ping": None},
                          "emitted": ["pong"], "values": {}}

    def test_interp_and_efsm_agree_on_counter(self, state):
        j = job("counter", length=12)
        interp = build_engine("interp", state.handles("counter"), j)
        efsm = build_engine("efsm", state.handles("counter"), j)
        stimulus = j.stimulus.materialize(efsm.input_alphabet(), j.seed)
        for instant in stimulus:
            assert compare_records(interp.step(instant),
                                   efsm.step(instant)) is None

    def test_rtos_engine_runs_single_task(self, state):
        engine = build_engine("rtos", state.handles("echo"), job())
        record = engine.step({"ping": None})
        assert record["emitted"] == ["pong"]
        assert engine.input_alphabet() == [("ping", True)]

    def test_aggregate_inputs_excluded_from_random_alphabet(self):
        """checkcrc's ``inpkt`` input is a union: random int stimulus
        must never drive it (regression: is_scalar is a method)."""
        from repro.designs import PROTOCOL_STACK_ECL

        stack_state = WorkerState({"stack": PROTOCOL_STACK_ECL})
        for engine_name in ("efsm", "rtos"):
            engine = build_engine(
                engine_name,
                stack_state.handles("stack"),
                job("checkcrc", design="stack", engine=engine_name),
            )
            names = [name for name, _pure in engine.input_alphabet()]
            assert "inpkt" not in names
            assert "reset" in names
        result = stack_state.run_job(
            job("checkcrc", design="stack", length=6))
        assert result.ok, result.error

    def test_make_record_hexes_bytes(self):
        record = make_record({"a": b"\x01\x02"}, {"out"},
                             {"out": b"\xff"})
        assert record["inputs"]["a"] == "0x0102"
        assert record["values"]["out"] == "0xff"

    def test_compare_records_reports_mismatch(self):
        left = make_record({}, {"a"}, {})
        right = make_record({}, {"b"}, {})
        assert "['a']" in compare_records(left, right)
        assert compare_records(left, left) is None


class TestWorkerState:
    def test_run_job_ok(self, state):
        result = state.run_job(job(length=10))
        assert result.status == STATUS_OK
        assert result.instants == 10
        assert result.ok

    def test_run_job_terminated_early(self, state):
        result = state.run_job(SimJob(
            design="once", module="once",
            stimulus=StimulusSpec.explicit(
                [{"go": None}, {"go": None}, {}])))
        assert result.status == STATUS_TERMINATED
        assert result.instants == 2   # start-up instant + the reaction
        assert result.ok

    def test_horizon_pads_short_stimulus(self, state):
        result = state.run_job(SimJob(
            design="echo", module="echo", horizon=9,
            stimulus=StimulusSpec.explicit([{"ping": None}])))
        assert result.instants == 9

    def test_unknown_module_is_job_error(self, state):
        result = state.run_job(job("nope", design="echo"))
        assert result.status == STATUS_ERROR
        assert "no module named" in result.error
        assert not result.ok

    def test_unknown_design_is_job_error(self, state):
        result = state.run_job(job("echo", design="ghost"))
        assert result.status == STATUS_ERROR
        assert "no design labelled" in result.error

    def test_bad_explicit_signal_is_job_error(self, state):
        result = state.run_job(SimJob(
            design="echo", module="echo",
            stimulus=StimulusSpec.explicit([{"bogus": None}])))
        assert result.status == STATUS_ERROR
        assert "does not declare input signal" in result.error

    def test_equivalence_mode_agrees(self, state):
        result = state.run_job(job("counter", engine="equivalence",
                                   length=16))
        assert result.status == STATUS_OK
        assert result.divergence is None

    def test_design_compiled_once_per_worker(self):
        state = WorkerState(DESIGNS)
        build_a = state.build("echo")
        state.run_job(job(length=2))
        state.run_job(job(length=2, index=1))
        assert state.build("echo") is build_a


class TestSimulationFarm:
    def test_inline_run_collects_ordered_results(self, tmp_path):
        farm = SimulationFarm(DESIGNS, workers=1,
                              ledger_root=str(tmp_path / "ledger"))
        jobs = expand_jobs([("echo", "echo"), ("counter", "counter")],
                           engines=("efsm", "interp"), traces=2,
                           length=6)
        report = farm.run(jobs)
        assert report.total == 8 and report.ok
        assert [r.index for r in report.results] == list(range(8))
        assert report.reactions == 48
        assert report.reactions_per_sec > 0
        assert report.status_counts() == {"ok": 8}
        assert "8 job(s)" in report.summary()
        assert all(r.trace_digest for r in report.results)

    def test_unknown_design_raises_before_dispatch(self):
        farm = SimulationFarm({"echo": ECHO})
        with pytest.raises(EclError, match="unknown design"):
            farm.run([job(design="ghost")])

    def test_job_error_does_not_abort_batch(self):
        farm = SimulationFarm(DESIGNS, workers=1)
        report = farm.run([job(length=3),
                           job("nope", design="echo", index=1)])
        assert not report.ok
        assert report.status_counts() == {"error": 1, "ok": 1}
        assert len(report.errors) == 1

    def test_chunking_groups_by_design(self):
        farm = SimulationFarm(DESIGNS, chunk_size=3)
        jobs = expand_jobs([("echo", "echo"), ("once", "once")],
                           traces=4)
        chunks = farm._chunk(jobs, workers=2)
        assert all(len({j.design for j in chunk}) == 1
                   for chunk in chunks)
        assert sorted(j.index for chunk in chunks for j in chunk) == \
            list(range(8))
        assert max(len(chunk) for chunk in chunks) <= 3

    def test_process_pool_run(self, tmp_path):
        farm = SimulationFarm(DESIGNS, workers=2, chunk_size=2,
                              ledger_root=str(tmp_path / "ledger"))
        jobs = expand_jobs([("echo", "echo"), ("once", "once")],
                           traces=3, length=4)
        report = farm.run(jobs)
        assert report.ok and report.total == 6
        assert report.workers == 2
        assert all(r.worker_pid for r in report.results)

    def test_report_as_dict_roundtrips_to_json(self):
        import json
        report = FarmReport(results=[SimResult(
            job_id="x", design="d", module="m", engine="efsm",
            index=0, instants=4)], elapsed=0.5, designs=1)
        data = json.loads(json.dumps(report.as_dict()))
        assert data["total"] == 1
        assert data["reactions"] == 4


class TestRtosTaskEngineSelection:
    """job.task_engine: what runs inside each rtos task."""

    def test_task_engine_enters_job_id_only_when_set(self):
        plain = job(engine="rtos")
        default = SimJob(design="echo", module="echo", engine="rtos",
                         stimulus=plain.stimulus, index=0, task_engine="")
        native = SimJob(design="echo", module="echo", engine="rtos",
                        stimulus=plain.stimulus, index=0,
                        task_engine="native")
        assert plain.job_id == default.job_id
        assert native.job_id != plain.job_id

    def test_unknown_task_engine_rejected(self):
        with pytest.raises(EclError, match="task engine"):
            SimJob(design="echo", module="echo", engine="rtos",
                   task_engine="turbo")

    def test_native_tasks_bind_from_partition_bundle(self, state):
        engine = build_engine("rtos", state.handles("echo"),
                              job(engine="rtos", task_engine="native"))
        assert all(task.uses_native_path
                   for task in engine.kernel.tasks)
        # kernel.start() already ran the start-up instant, so the
        # first posted ping answers (same as the efsm-task engine).
        assert engine.step({"ping": None})["emitted"] == ["pong"]
        assert engine.step({"ping": None})["emitted"] == ["pong"]

    def test_kernel_stats_surface(self, state):
        engine = build_engine("rtos", state.handles("echo"),
                              job(engine="rtos"))
        engine.step({"ping": None})
        stats = engine.kernel_stats()
        assert stats["dispatches"] >= 2
        assert "lost_events" in stats

    def test_result_carries_kernel_stats(self, state):
        result = state.run_job(job(engine="rtos", length=4))
        assert result.ok
        assert result.kernel_stats is not None
        assert result.kernel_stats["dispatches"] > 0
        plain = state.run_job(job(length=4))
        assert plain.kernel_stats is None

    def test_expand_jobs_applies_task_engine_to_rtos_only(self):
        jobs = expand_jobs([("echo", "echo")],
                           engines=("efsm", "rtos"),
                           task_engine="native")
        by_engine = {j.engine: j for j in jobs}
        assert by_engine["rtos"].task_engine == "native"
        assert by_engine["efsm"].task_engine == ""

    def test_report_aggregates_kernel_stats(self, state):
        results = [state.run_job(job(engine="rtos", length=4, index=i))
                   for i in range(2)]
        report = FarmReport(results=results, elapsed=0.1)
        totals = report.kernel_stats()
        assert totals["dispatches"] == sum(
            r.kernel_stats["dispatches"] for r in results)
        assert "rtos: dispatches=" in report.summary()
        assert report.as_dict()["kernel_stats"] == totals


class TestEquivalenceCoverage:
    """Cross-engine jobs merge full bitmaps via the efsm candidate."""

    def test_equivalence_job_collects_transition_coverage(self, state):
        result = state.run_job(
            job("counter", engine="equivalence", length=10,
                collect_coverage=True))
        assert result.ok, result.error
        assert result.coverage is not None
        assert result.coverage["covered_transitions"] > 0
        assert result.coverage["covered_states"] > 0


class TestResultSerialization:
    """SimResult/FarmReport to_dict: the service's wire format."""

    def test_to_dict_has_stable_field_order(self, state):
        result = state.run_job(job(length=4))
        keys = list(result.to_dict())
        from repro.farm.jobs import RESULT_FIELDS, RESULT_VOLATILE_FIELDS
        assert keys == list(RESULT_FIELDS) + list(RESULT_VOLATILE_FIELDS)

    def test_stable_form_drops_volatile_fields(self, state):
        result = state.run_job(job(length=4))
        stable = result.to_dict(volatile=False)
        for name in ("elapsed", "trace_path", "worker_pid"):
            assert name not in stable
        assert stable["job_id"] == result.job_id
        assert stable["status"] == "ok"

    def test_stable_bytes_identical_across_runs(self, state):
        import json
        fresh = WorkerState(DESIGNS)
        a = state.run_job(job("counter", length=6))
        b = fresh.run_job(job("counter", length=6))
        dump = lambda r: json.dumps(r.to_dict(volatile=False),  # noqa: E731
                                    sort_keys=True)
        assert dump(a) == dump(b)

    def test_from_dict_round_trip(self, state):
        result = state.run_job(job(length=4))
        clone = SimResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        # unknown keys from a newer peer are ignored, not fatal
        payload = result.to_dict()
        payload["future_field"] = 1
        assert SimResult.from_dict(payload).job_id == result.job_id

    def test_report_to_dict_volatile_toggle(self, state):
        report = FarmReport(results=[state.run_job(job(length=4))],
                            elapsed=0.5)
        full = report.to_dict()
        assert "elapsed" in full and "reactions_per_sec" in full
        stable = report.to_dict(volatile=False)
        for name in ("elapsed", "reactions_per_sec", "ledger_root"):
            assert name not in stable
        assert "elapsed" not in stable["results"][0]
        assert stable["total"] == 1


DUO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}

module once (input pure go, output pure done)
{
    await (go);
    emit (done);
}
"""


class TestPartitionedRtosCoverage:
    """Partitioned rtos jobs: one coverage map per member module."""

    def test_maps_sized_per_member_module(self):
        state = WorkerState({"duo": DUO})
        j = SimJob(design="duo", module="echo", engine="rtos",
                   stimulus=StimulusSpec.random(length=8),
                   tasks=(("e", "echo", 2), ("o", "once", 1)),
                   collect_coverage=True)
        coverage = state._coverage_for(j)
        assert set(coverage) == {"echo", "once"}
        # each map is sized by its own module's EFSM, not job.module's
        for name, cov in coverage.items():
            assert cov.module == name

    def test_partitioned_result_merges_per_module(self):
        state = WorkerState({"duo": DUO})
        j = SimJob(design="duo", module="echo", engine="rtos",
                   stimulus=StimulusSpec.random(length=16),
                   tasks=(("e", "echo", 2), ("o", "once", 1)),
                   collect_coverage=True)
        result = state.run_job(j)
        assert result.ok, result.error
        payload = result.coverage
        assert set(payload["modules"]) == {"echo", "once"}
        # the echo task reacted, so its module's map has marks
        assert payload["modules"]["echo"]["covered_states"] > 0

    def test_same_module_tasks_share_one_map(self, state):
        j = SimJob(design="echo", module="echo", engine="rtos",
                   stimulus=StimulusSpec.random(length=8),
                   tasks=(("a", "echo", 2), ("b", "echo", 1)),
                   collect_coverage=True)
        coverage = state._coverage_for(j)
        # member modules == [job.module]: the classic single map
        assert not isinstance(coverage, dict)
        result = state.run_job(j)
        assert result.ok, result.error
        assert "modules" not in result.coverage
        assert result.coverage["covered_states"] > 0


class TestTraceDriverFastPath:
    """The native engine's run_spec must match the generic paths."""

    def test_run_spec_records_match_step_records(self, state):
        j = job("counter", engine="native", length=16)
        driver_engine = build_engine("native", state.handles("counter"), j)
        records = driver_engine.run_spec(j)
        step_engine = build_engine("native", state.handles("counter"), j)
        stimulus = j.stimulus.materialize(step_engine.input_alphabet(),
                                          j.seed)
        expected = [step_engine.step(instant) for instant in stimulus]
        assert records == expected

    def test_run_spec_declines_explicit_stimulus(self, state):
        spec = StimulusSpec.explicit([{"tick": None}] * 3)
        j = SimJob(design="counter", module="counter", engine="native",
                   stimulus=spec, index=0)
        engine = build_engine("native", state.handles("counter"), j)
        assert engine.run_spec(j) is None

    def test_run_job_uses_driver_and_matches_efsm_trace(self, state):
        # Same stimulus spec, engines differ only in execution style;
        # compare via a shared ledger-free run through run_job.
        native = state.run_job(job("counter", engine="native", length=12))
        assert native.ok
        assert native.instants == 12
