"""Unit tests for the Esterel kernel semantics (react + interpreter).

These tests build kernel terms directly and run them with
:class:`repro.esterel.KernelRunner`, checking the classic Esterel
behaviours: pause boundaries, await non-immediacy, parallel max-code
combination, trap/exit, strong/weak abort, suspend freezing, and the
causality/instantaneous-loop rejections.
"""

import pytest

from repro.errors import CausalityError, EvalError, InstantaneousLoopError
from repro.esterel import KernelRunner, kernel as k
from repro.lang import INT, PURE, ast, parse_text
from repro.runtime import Env, SignalTable, SignalSlot


def sig(name):
    return ast.SigRef(name=name)


def sig_and(a, b):
    return ast.SigAnd(left=sig(a), right=sig(b))


def sig_not(a):
    return ast.SigNot(operand=sig(a))


def make_runner(stmt, inputs=(), outputs=(), locals_=()):
    env = Env()
    table = SignalTable()
    for name in inputs:
        table.add(SignalSlot(name, PURE, env.space, "input"))
    for name in outputs:
        table.add(SignalSlot(name, PURE, env.space, "output"))
    for name in locals_:
        table.add(SignalSlot(name, PURE, env.space, "local"))
    return KernelRunner(stmt, table, env)


def expr(text):
    """Parse a C expression (via a throwaway function body)."""
    program, _ = parse_text("int f() { return (%s); }" % text)
    return program.functions()[0].body.body[0].value


def action(text):
    """Parse a C statement into an Action kernel node."""
    program, _ = parse_text("void f() { %s }" % text)
    return k.Action(program.functions()[0].body.body[0])


class TestBasics:
    def test_nothing_terminates(self):
        runner = make_runner(k.NOTHING)
        assert runner.step().terminated

    def test_pause_takes_one_instant(self):
        runner = make_runner(k.Pause())
        assert not runner.step().terminated
        assert runner.step().terminated

    def test_halt_never_terminates(self):
        runner = make_runner(k.Halt())
        for _ in range(5):
            assert not runner.step().terminated

    def test_emit_is_instantaneous(self):
        runner = make_runner(k.Emit("o"), outputs=["o"])
        result = runner.step()
        assert result.terminated
        assert "o" in result.emitted

    def test_seq_runs_in_one_instant(self):
        runner = make_runner(
            k.seq(k.Emit("a"), k.Emit("b")), outputs=["a", "b"])
        result = runner.step()
        assert result.emitted == {"a", "b"}
        assert result.terminated

    def test_seq_residue_resumes_mid_sequence(self):
        runner = make_runner(
            k.seq(k.Emit("a"), k.Pause(), k.Emit("b")), outputs=["a", "b"])
        first = runner.step()
        assert first.emitted == {"a"}
        second = runner.step()
        assert second.emitted == {"b"}
        assert second.terminated

    def test_delta_pause_flag(self):
        runner = make_runner(k.Pause(delta=True))
        assert runner.step().delta_requested

    def test_plain_pause_no_delta_flag(self):
        runner = make_runner(k.Pause())
        assert not runner.step().delta_requested

    def test_step_after_termination_is_noop(self):
        runner = make_runner(k.NOTHING)
        runner.step()
        assert runner.step().terminated


class TestAwait:
    def test_await_is_non_immediate(self):
        # Paper, statement 2: "ends the current instant and waits ... in
        # some later instant".
        runner = make_runner(k.Await(sig("s")), inputs=["s"])
        result = runner.step(inputs=["s"])  # same instant: missed
        assert not result.terminated
        assert runner.step(inputs=["s"]).terminated

    def test_await_waits_until_occurrence(self):
        runner = make_runner(k.Await(sig("s")), inputs=["s"])
        runner.step()
        for _ in range(3):
            assert not runner.step().terminated
        assert runner.step(inputs=["s"]).terminated

    def test_await_boolean_expression(self):
        runner = make_runner(k.Await(sig_and("a", "b")), inputs=["a", "b"])
        runner.step()
        assert not runner.step(inputs=["a"]).terminated
        assert runner.step(inputs=["a", "b"]).terminated

    def test_await_negation(self):
        runner = make_runner(k.Await(sig_not("a")), inputs=["a"])
        runner.step(inputs=["a"])
        assert not runner.step(inputs=["a"]).terminated
        assert runner.step().terminated


class TestPresent:
    def test_present_then(self):
        runner = make_runner(
            k.Present(sig("s"), k.Emit("o"), k.NOTHING),
            inputs=["s"], outputs=["o"])
        assert runner.step(inputs=["s"]).emitted == {"o"}

    def test_present_else(self):
        runner = make_runner(
            k.Present(sig("s"), k.NOTHING, k.Emit("o")),
            inputs=["s"], outputs=["o"])
        assert runner.step().emitted == {"o"}

    def test_unknown_signal_rejected(self):
        runner = make_runner(k.Present(sig("zz"), k.NOTHING, k.NOTHING))
        with pytest.raises(EvalError):
            runner.step()


class TestLoop:
    def test_loop_pause_runs_forever(self):
        runner = make_runner(k.Loop(k.seq(k.Emit("o"), k.Pause())),
                             outputs=["o"])
        for _ in range(4):
            result = runner.step()
            assert not result.terminated
            assert result.emitted == {"o"}

    def test_instantaneous_loop_rejected(self):
        runner = make_runner(k.Loop(k.Emit("o")), outputs=["o"])
        with pytest.raises(InstantaneousLoopError):
            runner.step()

    def test_loop_restart_within_instant_is_fine(self):
        # loop { pause; emit } — resuming terminates the body and restarts
        # it once; that is legal as long as the restart pauses.
        runner = make_runner(k.Loop(k.seq(k.Pause(), k.Emit("o"))),
                             outputs=["o"])
        assert runner.step().emitted == set()
        assert runner.step().emitted == {"o"}
        assert runner.step().emitted == {"o"}


class TestPar:
    def test_par_waits_for_all(self):
        # pause | (pause; pause): the right branch resumes at instant 2,
        # pauses again, and terminates at instant 3.
        stmt = k.par(k.Pause(), k.seq(k.Pause(), k.Pause()))
        runner = make_runner(stmt)
        assert not runner.step().terminated
        assert not runner.step().terminated
        assert runner.step().terminated

    def test_par_broadcast_same_instant(self):
        # One branch emits, the other sees it in the same instant.
        stmt = k.par(
            k.Emit("mid"),
            k.Present(sig("mid"), k.Emit("o"), k.NOTHING),
        )
        runner = make_runner(stmt, outputs=["o"], locals_=["mid"])
        assert "o" in runner.step().emitted

    def test_par_broadcast_right_to_left(self):
        # The emitter is *after* the tester: the fixed point still finds it.
        stmt = k.par(
            k.Present(sig("mid"), k.Emit("o"), k.NOTHING),
            k.Emit("mid"),
        )
        runner = make_runner(stmt, outputs=["o"], locals_=["mid"])
        result = runner.step()
        assert "o" in result.emitted
        assert result.rounds > 1  # needed a second round to learn 'mid'

    def test_terminated_branch_does_not_rerun(self):
        stmt = k.par(
            k.Emit("a"),
            k.seq(k.Pause(), k.Emit("b")),
        )
        runner = make_runner(stmt, outputs=["a", "b"])
        assert runner.step().emitted == {"a"}
        result = runner.step()
        assert result.emitted == {"b"}  # 'a' not re-emitted
        assert result.terminated


class TestTrapExit:
    def test_exit_terminates_trap(self):
        stmt = k.Trap(k.seq(k.Exit(0), k.Emit("never")))
        runner = make_runner(stmt, outputs=["never"])
        result = runner.step()
        assert result.terminated
        assert result.emitted == set()

    def test_exit_kills_parallel_sibling(self):
        stmt = k.Trap(k.par(k.Exit(0), k.Halt()))
        runner = make_runner(stmt)
        assert runner.step().terminated

    def test_nested_traps_de_bruijn(self):
        # Exit(1) escapes both traps.
        stmt = k.seq(
            k.Trap(k.Trap(k.Exit(1))),
            k.Emit("after"),
        )
        runner = make_runner(stmt, outputs=["after"])
        result = runner.step()
        assert result.terminated
        assert result.emitted == {"after"}

    def test_exit_in_later_instant(self):
        stmt = k.Trap(k.seq(k.Pause(), k.Exit(0)))
        runner = make_runner(stmt)
        assert not runner.step().terminated
        assert runner.step().terminated

    def test_outer_exit_wins_in_par(self):
        # Two simultaneous exits: the outermost trap's wins.
        inner_emit = k.Emit("inner_handler")
        stmt = k.seq(
            k.Trap(k.seq(k.Trap(k.par(k.Exit(0), k.Exit(1))), inner_emit)),
            k.Emit("outer_done"),
        )
        runner = make_runner(stmt, outputs=["inner_handler", "outer_done"])
        result = runner.step()
        assert result.emitted == {"outer_done"}


class TestAbort:
    def abort_stmt(self, weak=False, handler=None):
        body = k.Loop(k.seq(k.Emit("tick"), k.Pause()))
        return k.Abort(body, sig("s"), handler=handler, weak=weak)

    def test_strong_abort_not_immediate(self):
        # Paper, statement 5: triggers in a *later* instant.
        runner = make_runner(self.abort_stmt(), inputs=["s"],
                             outputs=["tick"])
        result = runner.step(inputs=["s"])
        assert not result.terminated
        assert result.emitted == {"tick"}

    def test_strong_abort_blocks_body_in_trigger_instant(self):
        runner = make_runner(self.abort_stmt(), inputs=["s"],
                             outputs=["tick"])
        runner.step()
        result = runner.step(inputs=["s"])
        assert result.terminated
        assert result.emitted == set()  # body got no instant

    def test_weak_abort_lets_body_run_last_instant(self):
        runner = make_runner(self.abort_stmt(weak=True), inputs=["s"],
                             outputs=["tick"])
        runner.step()
        result = runner.step(inputs=["s"])
        assert result.terminated
        assert result.emitted == {"tick"}

    def test_abort_handler_runs_on_preemption(self):
        handler = k.Emit("handled")
        runner = make_runner(self.abort_stmt(handler=handler),
                             inputs=["s"], outputs=["tick", "handled"])
        runner.step()
        result = runner.step(inputs=["s"])
        assert result.terminated
        assert result.emitted == {"handled"}

    def test_handler_skipped_on_normal_termination(self):
        body = k.seq(k.Pause(), k.Emit("done"))
        stmt = k.Abort(body, sig("s"), handler=k.Emit("handled"))
        runner = make_runner(stmt, inputs=["s"],
                             outputs=["done", "handled"])
        runner.step()
        result = runner.step()
        assert result.terminated
        assert result.emitted == {"done"}

    def test_abort_restarts_loop_like_paper_reset(self):
        # while(1){ do { await byte...} abort(reset) } — Figure 1's shape.
        body = k.seq(k.Await(sig("b")), k.Emit("got"))
        stmt = k.Loop(k.Abort(body, sig("reset")))
        runner = make_runner(stmt, inputs=["b", "reset"], outputs=["got"])
        runner.step()
        runner.step(inputs=["reset"])   # abort, loop restarts the await
        result = runner.step(inputs=["b"])
        assert result.emitted == {"got"}


class TestSuspend:
    def counter_stmt(self):
        return k.Suspend(
            k.Loop(k.seq(k.Emit("tick"), k.Pause())), sig("s"))

    def test_suspend_freezes_body(self):
        runner = make_runner(self.counter_stmt(), inputs=["s"],
                             outputs=["tick"])
        assert runner.step().emitted == {"tick"}
        assert runner.step(inputs=["s"]).emitted == set()  # frozen (^Z)
        assert runner.step().emitted == {"tick"}            # resumes

    def test_suspend_first_instant_runs(self):
        runner = make_runner(self.counter_stmt(), inputs=["s"],
                             outputs=["tick"])
        assert runner.step(inputs=["s"]).emitted == {"tick"}


class TestDataActions:
    def make_env_runner(self, stmt, var_names=("x",)):
        env = Env()
        for name in var_names:
            env.declare(name, INT)
        table = SignalTable()
        table.add(SignalSlot("o", PURE, env.space, "output"))
        table.add(SignalSlot("s", PURE, env.space, "input"))
        return KernelRunner(stmt, table, env), env

    def test_action_executes(self):
        runner, env = self.make_env_runner(action("x = 42;"))
        runner.step()
        assert env.lookup("x").load() == 42

    def test_ifdata_branches_on_memory(self):
        stmt = k.seq(
            action("x = 5;"),
            k.IfData(expr("x > 3"), k.Emit("o"), k.NOTHING),
        )
        runner, _ = self.make_env_runner(stmt)
        assert runner.step().emitted == {"o"}

    def test_data_loop_state_survives_instants(self):
        # x increments once per instant across pauses.
        stmt = k.Loop(k.seq(action("x = x + 1;"), k.Pause()))
        runner, env = self.make_env_runner(stmt)
        for _ in range(3):
            runner.step()
        assert env.lookup("x").load() == 3

    def test_fixpoint_rerun_does_not_double_execute_actions(self):
        # Emitter after the data action: the second round must not leave
        # x incremented twice.
        stmt = k.par(
            k.Present(sig("mid"), action("x = x + 1;"), action("x = x + 1;")),
            k.Emit("mid"),
        )
        env = Env()
        env.declare("x", INT)
        table = SignalTable()
        table.add(SignalSlot("mid", PURE, env.space, "local"))
        runner = KernelRunner(stmt, table, env)
        result = runner.step()
        assert result.rounds > 1
        assert env.lookup("x").load() == 1


class TestCausality:
    def test_paradox_raises(self):
        # present s else emit s — no consistent status for s.
        stmt = k.Present(sig("s"), k.NOTHING, k.Emit("s"))
        runner = make_runner(stmt, locals_=["s"])
        with pytest.raises(CausalityError):
            runner.step()

    def test_self_justifying_emission_accepted(self):
        # present s then emit s — logically coherent both ways; our
        # absent-by-default iteration picks "absent", which is the
        # constructive answer.
        stmt = k.Present(sig("s"), k.Emit("s"), k.NOTHING)
        runner = make_runner(stmt, locals_=["s"])
        assert runner.step().emitted == set()

    def test_chain_of_dependencies_converges(self):
        stmt = k.par(
            k.Present(sig("b"), k.Emit("c"), k.NOTHING),
            k.Present(sig("a"), k.Emit("b"), k.NOTHING),
            k.Emit("a"),
        )
        runner = make_runner(stmt, locals_=["a", "b", "c"])
        assert runner.step().emitted == {"a", "b", "c"}


class TestEmitValues:
    def test_emit_value_readable_after_instant(self):
        env = Env()
        table = SignalTable()
        table.add(SignalSlot("v", INT, env.space, "output"))
        runner = KernelRunner(k.Emit("v", expr("21 * 2")), table, env)
        runner.step()
        assert table["v"].load() == 42

    def test_value_persists_across_instants(self):
        env = Env()
        table = SignalTable()
        table.add(SignalSlot("v", INT, env.space, "output"))
        stmt = k.seq(k.Emit("v", expr("7")), k.Pause(), k.Pause())
        runner = KernelRunner(stmt, table, env)
        runner.step()
        runner.step()
        assert table["v"].load() == 7  # presence gone, value persists
        assert not table["v"].present

    def test_emit_v_on_pure_signal_rejected(self):
        runner = make_runner(k.Emit("o", expr("1")), outputs=["o"])
        with pytest.raises(EvalError):
            runner.step()

    def test_bare_emit_on_valued_signal_rejected(self):
        env = Env()
        table = SignalTable()
        table.add(SignalSlot("v", INT, env.space, "output"))
        runner = KernelRunner(k.Emit("v"), table, env)
        with pytest.raises(EvalError):
            runner.step()

    def test_emit_input_rejected(self):
        runner = make_runner(k.Emit("s"), inputs=["s"])
        with pytest.raises(EvalError):
            runner.step()
