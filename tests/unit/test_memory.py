"""Unit tests for the byte-backed address space and l-values."""

import pytest

from repro.errors import EvalError
from repro.lang import ArrayType, CHAR, INT, StructType, UCHAR, UINT, UnionType
from repro.runtime import AddressSpace, Variable
from repro.runtime.memory import decode_scalar, encode_scalar


class TestAddressSpace:
    def test_zero_initialized(self):
        space = AddressSpace()
        address = space.alloc(8)
        assert space.read_bytes(address, 8) == b"\x00" * 8

    def test_alignment(self):
        space = AddressSpace()
        space.alloc(1)
        address = space.alloc(4, align=4)
        assert address % 4 == 0

    def test_null_page_protected(self):
        space = AddressSpace()
        with pytest.raises(EvalError):
            space.read_bytes(0, 4)
        with pytest.raises(EvalError):
            space.write_bytes(0, b"\x01")

    def test_allocated_bytes_accounting(self):
        space = AddressSpace()
        space.alloc(10)
        assert space.allocated_bytes >= 10

    def test_snapshot_restore(self):
        space = AddressSpace()
        address = space.alloc(4)
        space.write_scalar(address, INT, 42)
        saved = space.snapshot()
        space.write_scalar(address, INT, 99)
        space.restore(saved)
        assert space.read_scalar(address, INT) == 42


class TestScalarEncoding:
    def test_roundtrip_int(self):
        for value in (0, 1, -1, 2**31 - 1, -(2**31)):
            assert decode_scalar(encode_scalar(value, INT), INT) == value

    def test_little_endian(self):
        assert encode_scalar(0x01020304, INT) == b"\x04\x03\x02\x01"

    def test_unsigned_wrap_on_encode(self):
        assert decode_scalar(encode_scalar(-1, UINT), UINT) == 2**32 - 1


class TestVariablesAndLValues:
    def test_scalar_store_load(self):
        space = AddressSpace()
        var = Variable("x", INT, space)
        var.store(-7)
        assert var.load() == -7

    def test_char_wraps(self):
        space = AddressSpace()
        var = Variable("c", CHAR, space)
        var.store(200)
        assert var.load() == 200 - 256

    def test_array_element_access(self):
        space = AddressSpace()
        var = Variable("a", ArrayType(INT, 4), space)
        var.lvalue.element(2).store(5)
        assert var.lvalue.element(2).load() == 5
        assert var.lvalue.element(0).load() == 0

    def test_array_bounds_checked(self):
        space = AddressSpace()
        var = Variable("a", ArrayType(INT, 4), space)
        with pytest.raises(EvalError):
            var.lvalue.element(4)
        with pytest.raises(EvalError):
            var.lvalue.element(-1)

    def test_struct_field_access(self):
        space = AddressSpace()
        s = StructType.build("s", [("a", CHAR), ("b", INT)])
        var = Variable("v", s, space)
        var.lvalue.field("b").store(77)
        assert var.lvalue.field("b").load() == 77
        assert var.lvalue.field("a").load() == 0

    def test_aggregate_copy(self):
        space = AddressSpace()
        s = StructType.build("s", [("a", INT), ("b", INT)])
        src = Variable("src", s, space)
        dst = Variable("dst", s, space)
        src.lvalue.field("a").store(1)
        src.lvalue.field("b").store(2)
        dst.store(src.load())
        assert dst.lvalue.field("a").load() == 1
        assert dst.lvalue.field("b").load() == 2

    def test_scalar_into_aggregate_rejected(self):
        space = AddressSpace()
        s = StructType.build("s", [("a", INT)])
        var = Variable("v", s, space)
        with pytest.raises(EvalError):
            var.store(3)


class TestUnionAliasing:
    """The property Figure 1 of the paper depends on."""

    def _packet_type(self):
        view1 = StructType.build("v1", [("packet", ArrayType(UCHAR, 8))])
        view2 = StructType.build("v2", [
            ("header", ArrayType(UCHAR, 2)),
            ("data", ArrayType(UCHAR, 4)),
            ("crc", ArrayType(UCHAR, 2)),
        ])
        return UnionType.build("pkt", [("raw", view1), ("cooked", view2)])

    def test_write_raw_read_cooked(self):
        space = AddressSpace()
        pkt = Variable("p", self._packet_type(), space)
        raw = pkt.lvalue.field("raw").field("packet")
        for i in range(8):
            raw.element(i).store(i + 1)
        cooked = pkt.lvalue.field("cooked")
        assert cooked.field("header").element(0).load() == 1
        assert cooked.field("data").element(0).load() == 3
        assert cooked.field("crc").element(1).load() == 8

    def test_cast_crc_bytes_to_int(self):
        # (int) inpkt.cooked.crc — reinterpret the leading bytes.
        space = AddressSpace()
        pkt = Variable("p", self._packet_type(), space)
        crc = pkt.lvalue.field("cooked").field("crc")
        crc.element(0).store(0x34)
        crc.element(1).store(0x12)
        raw = space.read_bytes(crc.address, 2)
        assert int.from_bytes(raw, "little") == 0x1234
