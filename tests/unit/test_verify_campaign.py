"""Unit + integration coverage of coverage-guided fuzz campaigns.

The acceptance scenario of the verify subsystem: a farm-sharded
campaign on the elevator-door design reaches 100% transition coverage,
and the buggy variant is caught with a minimized counterexample that
lands in the trace ledger.
"""

import json
import os

import pytest

from repro.cli import main
from repro.designs import DOOR_CTRL_BUGGY_ECL, DOOR_CTRL_ECL
from repro.errors import EclError
from repro.farm import TraceLedger
from repro.verify import (
    VerifyCampaign,
    load_campaign_spec,
    never,
    present,
    within,
)

INTERLOCK = never(present("door_open") & present("motor_on"))


class TestCampaignInline:
    def test_good_controller_reaches_full_transition_coverage(self):
        campaign = VerifyCampaign(
            {"door": DOOR_CTRL_ECL}, "door", "door_ctrl",
            properties=[INTERLOCK],
            rounds=6, jobs_per_round=8, length=48, workers=1, salt=3)
        result = campaign.run()
        assert result.ok
        assert result.reached_target
        assert result.report.complete
        assert result.report.transition_percent == 100.0
        assert not result.violations
        assert "100.0%" in result.summary()

    def test_buggy_controller_caught_and_minimized(self, tmp_path):
        ledger_root = str(tmp_path / "traces")
        campaign = VerifyCampaign(
            {"door": DOOR_CTRL_BUGGY_ECL}, "door", "door_ctrl",
            properties=[INTERLOCK],
            rounds=6, jobs_per_round=8, length=48, workers=1, salt=3,
            ledger_root=ledger_root)
        result = campaign.run()
        assert not result.ok
        violation = result.violations[0]
        assert "door_open & motor_on" in violation.property_text
        # the minimal witness: one empty start instant (non-immediate
        # await), call_btn, then three ticks to the buggy arrival
        assert list(violation.stimulus) == [
            {}, {"call_btn": None}, {"tick": None}, {"tick": None},
            {"tick": None}]
        # the minimized counterexample is persisted in the ledger
        assert violation.trace_digest is not None
        ledger = TraceLedger(ledger_root)
        header, records = ledger.load(violation.trace_digest)
        assert header["module"] == "door_ctrl"
        assert len(records) == 5
        assert set(records[-1]["emitted"]) == {"door_open", "motor_on"}

    def test_campaign_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            campaign = VerifyCampaign(
                {"door": DOOR_CTRL_BUGGY_ECL}, "door", "door_ctrl",
                properties=[INTERLOCK],
                rounds=3, jobs_per_round=6, length=40, workers=1,
                salt=11)
            result = campaign.run()
            outcomes.append(
                (result.jobs_run,
                 tuple(tuple(sorted(i.items()))
                       for v in result.violations for i in v.stimulus)))
        assert outcomes[0] == outcomes[1]

    def test_unknown_design_label_rejected(self):
        with pytest.raises(EclError):
            VerifyCampaign({"door": DOOR_CTRL_ECL}, "ghost", "door_ctrl")

    def test_non_replayable_engine_rejected_at_construction(self):
        with pytest.raises(EclError) as caught:
            VerifyCampaign({"door": DOOR_CTRL_ECL}, "door", "door_ctrl",
                           engine="equivalence")
        assert "campaign engine" in str(caught.value)

    def test_coverage_only_campaign_without_properties(self):
        campaign = VerifyCampaign(
            {"door": DOOR_CTRL_ECL}, "door", "door_ctrl",
            rounds=4, jobs_per_round=8, length=48, workers=1, salt=5)
        result = campaign.run()
        assert result.ok
        assert result.reached_target

    def test_seed_corpus_feeds_round_zero(self):
        seed = [{}, {"call_btn": None}, {"tick": None}, {"tick": None},
                {"tick": None}]
        campaign = VerifyCampaign(
            {"door": DOOR_CTRL_BUGGY_ECL}, "door", "door_ctrl",
            properties=[INTERLOCK],
            rounds=1, jobs_per_round=1, length=8, workers=1,
            seeds=[seed], minimize=False)
        result = campaign.run()
        assert result.violations
        assert result.violations[0].job_label.endswith("#0")


class TestCampaignOnFarm:
    def test_farm_sharded_campaign_full_coverage_and_catch(self, tmp_path):
        """The acceptance criterion, with real worker processes."""
        ledger_root = str(tmp_path / "traces")
        campaign = VerifyCampaign(
            {"door": DOOR_CTRL_BUGGY_ECL}, "door", "door_ctrl",
            properties=[INTERLOCK],
            rounds=4, jobs_per_round=8, length=48, workers=2,
            chunk_size=1, salt=3, ledger_root=ledger_root)
        result = campaign.run()
        assert result.reached_target
        assert result.report.transition_percent == 100.0
        assert result.violations
        assert result.violations[0].trace_digest is not None


class TestCampaignSpec:
    def _write(self, tmp_path, extra=""):
        (tmp_path / "door.ecl").write_text(DOOR_CTRL_BUGGY_ECL)
        spec = {
            "designs": {"door": "door.ecl"},
            "module": "door_ctrl",
            "properties": [
                {"kind": "never",
                 "pred": {"all": ["door_open", "motor_on"]}}],
            "rounds": 3, "jobs_per_round": 6, "length": 40,
            "workers": 1, "seed": 3,
        }
        spec.update(json.loads(extra) if extra else {})
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_spec_round_trip(self, tmp_path):
        campaign = load_campaign_spec(self._write(tmp_path))
        assert campaign.design == "door"  # single design inferred
        assert campaign.module == "door_ctrl"
        assert campaign.properties == (INTERLOCK,)
        result = campaign.run()
        assert result.violations

    def test_spec_with_seeds_and_ledger(self, tmp_path):
        extra = json.dumps({
            "ledger": "traces",
            "seeds": [[{}, {"call_btn": None}, {"tick": None},
                       {"tick": None}, {"tick": None}]],
        })
        campaign = load_campaign_spec(self._write(tmp_path, extra))
        assert campaign.ledger_root == str(tmp_path / "traces")
        assert len(campaign.seeds) == 1
        result = campaign.run()
        assert result.violations
        assert os.path.isdir(str(tmp_path / "traces"))

    def test_bad_specs_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(EclError):
            load_campaign_spec(str(path))
        path.write_text(json.dumps({"designs": {}}))
        with pytest.raises(EclError):
            load_campaign_spec(str(path))
        (tmp_path / "door.ecl").write_text(DOOR_CTRL_ECL)
        path.write_text(json.dumps(
            {"designs": {"door": "door.ecl"}}))  # no module
        with pytest.raises(EclError):
            load_campaign_spec(str(path))


class TestVerifyCli:
    def _design(self, tmp_path, source):
        path = tmp_path / "door.ecl"
        path.write_text(source)
        return str(path)

    def test_verify_run_flags_catch_the_bug(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_BUGGY_ECL)
        report = str(tmp_path / "report.json")
        code = main(["verify", "run", design, "-m", "door_ctrl",
                     "--never", "door_open&motor_on",
                     "--rounds", "3", "--jobs", "6", "-j", "1",
                     "--seed", "3", "--report", report])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out
        assert "minimized" in out
        data = json.load(open(report))
        assert data["ok"] is False
        assert data["violations"]
        assert data["coverage"]["transition_percent"] == 100.0

    def test_verify_run_clean_design_exits_zero(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        code = main(["verify", "run", design, "-m", "door_ctrl",
                     "--never", "door_open&motor_on",
                     "--rounds", "3", "--jobs", "6", "-j", "1",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reached" in out

    def test_verify_run_needs_properties(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        code = main(["verify", "run", design, "-m", "door_ctrl"])
        assert code == 2
        assert "eclc cover" in capsys.readouterr().err

    def test_verify_run_spec(self, tmp_path, capsys):
        (tmp_path / "door.ecl").write_text(DOOR_CTRL_BUGGY_ECL)
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps({
            "designs": {"door": "door.ecl"},
            "module": "door_ctrl",
            "properties": [{"kind": "never",
                            "pred": {"all": ["door_open", "motor_on"]}}],
            "rounds": 3, "jobs_per_round": 6, "workers": 1, "seed": 3,
        }))
        code = main(["verify", "run", "--spec", str(spec)])
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_spec_flags_override_or_are_rejected(self, tmp_path, capsys):
        (tmp_path / "door.ecl").write_text(DOOR_CTRL_BUGGY_ECL)
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps({
            "designs": {"door": "door.ecl"},
            "module": "door_ctrl",
            "properties": [{"kind": "never",
                            "pred": {"all": ["door_open", "motor_on"]}}],
            "rounds": 3, "jobs_per_round": 6, "workers": 1, "seed": 3,
        }))
        # flags given next to --spec override the spec's values
        code = main(["verify", "run", "--spec", str(spec),
                     "--jobs", "4", "--rounds", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "4 job(s) over 1 round(s)" in out
        # property flags and a positional file conflict loudly
        assert main(["verify", "run", "--spec", str(spec),
                     "--never", "door_open"]) == 2
        assert "cannot be combined" in capsys.readouterr().err
        assert main(["verify", "run", str(tmp_path / "door.ecl"),
                     "--spec", str(spec)]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cover_reports_and_gates(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        report = str(tmp_path / "coverage.json")
        code = main(["cover", design, "-m", "door_ctrl",
                     "--rounds", "3", "--jobs", "8", "-j", "1",
                     "--seed", "3", "--fail-under", "100",
                     "--report", report])
        out = capsys.readouterr().out
        assert code == 0
        assert "transitions 11/11" in out
        data = json.load(open(report))
        assert data["coverage"]["transition_percent"] == 100.0

    def test_cover_fail_under_gates(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        # a campaign too small to cover everything: one empty-ish trace
        code = main(["cover", design, "-m", "door_ctrl",
                     "--rounds", "1", "--jobs", "1", "--length", "1",
                     "-j", "1", "--seed", "3", "--fail-under", "100"])
        err = capsys.readouterr().err
        assert code == 1
        assert "below --fail-under" in err

    def test_malformed_predicate_terms_rejected(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        for bad in ("level=3", "door_open|motor_on", "a&&b"):
            code = main(["verify", "run", design, "-m", "door_ctrl",
                         "--never", bad, "--rounds", "1", "--jobs", "2"])
            err = capsys.readouterr().err
            assert code == 1
            assert "bad signal name" in err or "empty predicate" in err

    def test_cover_rejects_the_interpreter_engine(self, tmp_path,
                                                  capsys):
        import pytest as _pytest
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        with _pytest.raises(SystemExit):
            main(["cover", design, "-m", "door_ctrl",
                  "--engine", "interp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_within_property_flag(self, tmp_path, capsys):
        design = self._design(tmp_path, DOOR_CTRL_ECL)
        code = main(["verify", "run", design, "-m", "door_ctrl",
                     "--within", "call_btn:door_open:8",
                     "--rounds", "2", "--jobs", "6", "-j", "1",
                     "--seed", "3"])
        out = capsys.readouterr().out
        # without guaranteed ticks the door may legitimately stall:
        # the campaign reports it either way — just exercise the flag
        assert code in (0, 1)
        assert "campaign:" in out
