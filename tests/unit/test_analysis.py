"""Unit tests for the FSM-level analysis tools."""


import pytest

from repro.analysis import (
    check_emission_implies,
    check_never_emitted,
    check_never_terminates,
    compare_on_trace,
    possible_emissions,
    quiescent_states,
)
from repro.core import EclCompiler


def efsm_of(src, name="m"):
    return EclCompiler().compile_text(src).module(name).efsm()


SERVER = """
module m (input pure req, output pure ack)
{
    while (1) { await (req); emit (ack); }
}
"""

TERMINATING = """
module m (input pure go, output pure done)
{
    await (go);
    emit (done);
}
"""

HALTING = """
module m (input pure go, output pure once)
{
    await (go);
    emit (once);
    halt ();
}
"""

GUARDED = """
module m (input pure a, input pure b, output pure both,
          output pure witness)
{
    while (1) {
        await (a & b);
        emit (both);
        emit (witness);
    }
}
"""


class TestNeverEmitted:
    def test_emittable_signal_found(self):
        counterexample = check_never_emitted(efsm_of(SERVER), "ack")
        assert counterexample is not None
        assert "ack" in counterexample.describe()

    def test_truly_dead_signal(self):
        src = ("module m (input pure req, output pure ack,"
               " output pure never) {"
               " while (1) { await (req); emit (ack); } }")
        assert check_never_emitted(efsm_of(src), "never") is None

    def test_counterexample_is_a_path(self):
        counterexample = check_never_emitted(efsm_of(GUARDED), "both")
        assert counterexample.length >= 1
        final = counterexample.edges[-1]
        assert {"a", "b"} <= final.inputs


class TestTermination:
    def test_server_never_terminates(self):
        assert check_never_terminates(efsm_of(SERVER)) is None

    def test_terminating_module_detected(self):
        counterexample = check_never_terminates(efsm_of(TERMINATING))
        assert counterexample is not None


class TestImplications:
    def test_paired_emissions_hold(self):
        assert check_emission_implies(
            efsm_of(GUARDED), "both", "witness") is None

    def test_violation_found(self):
        src = ("module m (input pure a, output pure x, output pure y) {"
               " while (1) { await (a); emit (x);"
               " await (a); emit (x); emit (y); } }")
        counterexample = check_emission_implies(efsm_of(src), "x", "y")
        assert counterexample is not None


class TestEmissionsAndSinks:
    def test_possible_emissions(self):
        assert possible_emissions(efsm_of(GUARDED)) == {"both", "witness"}

    def test_halting_module_has_quiescent_state(self):
        assert quiescent_states(efsm_of(HALTING))

    def test_live_server_has_none(self):
        assert quiescent_states(efsm_of(SERVER)) == []


class TestPaperDesignProperties:
    def test_stack_no_match_without_input(self):
        from repro.designs import PROTOCOL_STACK_ECL
        design = EclCompiler().compile_text(PROTOCOL_STACK_ECL)
        efsm = design.module("toplevel").efsm()
        # addr_match is reachable (the design works)...
        assert check_never_emitted(efsm, "addr_match") is not None
        # ...and the stack never terminates (it is a server).
        assert check_never_terminates(efsm) is None

    def test_audio_buffer_dac_needs_pop(self):
        from repro.designs import AUDIO_BUFFER_ECL
        design = EclCompiler().compile_text(AUDIO_BUFFER_ECL)
        efsm = design.module("fifo_ctrl").efsm()
        # Every dac_out emission happens in an instant with fifo_level
        # re-emitted (the bookkeeping invariant of the FIFO).
        assert check_emission_implies(efsm, "dac_out", "fifo_level") is None


class TestEquivalenceChecker:
    def test_detects_divergence(self):
        design_a = EclCompiler().compile_text(SERVER)
        module = design_a.module("m")
        other = EclCompiler().compile_text(
            SERVER.replace("emit (ack)", "emit(ack); emit (ack)"))
        # Compare module A's kernel against itself: no mismatch.
        trace = [{}, {"req": None}, {}, {"req": None}]
        assert compare_on_trace(module.kernel, module.efsm(), trace) is None

    def test_mismatch_reported(self):
        from repro.efsm.machine import Efsm, Leaf, State
        design = EclCompiler().compile_text(SERVER)
        module = design.module("m")
        # A bogus machine that never emits anything.
        dead = Efsm(name="m", states=[State(0, Leaf(0))], initial=0,
                    inputs=("req",), outputs=("ack",),
                    module=module.kernel)
        mismatch = compare_on_trace(module.kernel, dead,
                                    [{}, {"req": None}])
        assert mismatch is not None
        assert "ack" in mismatch.describe()

    def test_any_engine_pair_selectable(self):
        design = EclCompiler().compile_text(SERVER)
        module = design.module("m")
        trace = [{}, {"req": None}, {}, {"req": None}]
        for engine in ("interp", "efsm", "native"):
            assert compare_on_trace(module.kernel, module.efsm(), trace,
                                    engine=engine) is None
        # compiled vs compiled, no interpreter anywhere
        assert compare_on_trace(module.kernel, module.efsm(), trace,
                                engine="native",
                                reference="efsm") is None

    def test_engine_names_appear_in_mismatch(self):
        from repro.efsm.machine import Efsm, Leaf, State
        design = EclCompiler().compile_text(SERVER)
        module = design.module("m")
        dead = Efsm(name="m", states=[State(0, Leaf(0))], initial=0,
                    inputs=("req",), outputs=("ack",),
                    module=module.kernel)
        mismatch = compare_on_trace(module.kernel, dead,
                                    [{}, {"req": None}],
                                    engine="native")
        assert mismatch is None or "native" in mismatch.describe()
        # the dead machine also fails under the efsm engine; the text
        # names whichever side diverged
        mismatch = compare_on_trace(module.kernel, dead,
                                    [{}, {"req": None}], engine="efsm")
        assert "efsm" in mismatch.describe()

    def test_unknown_engine_rejected(self):
        from repro.errors import EclError
        design = EclCompiler().compile_text(SERVER)
        module = design.module("m")
        with pytest.raises(EclError):
            compare_on_trace(module.kernel, module.efsm(), [{}],
                             engine="warp")
