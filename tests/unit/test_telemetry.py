"""Unit tests for repro.telemetry: registry, spans, Prometheus text.

The metric machinery is a contract other layers build on (the serve
endpoints, ``eclc stats``, the CI smoke scrape), so the registry
semantics, the span accounting, and the exposition format itself are
all pinned here — including escaping, label ordering and histogram
bucket cumulativity, which a scraper would silently mis-ingest if we
got them wrong.
"""

import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    exponential_buckets,
    format_profile,
    format_snapshot,
    format_value,
    parse_prometheus,
    profile_rows,
    quantile_from_buckets,
    render_prometheus,
)
from repro.telemetry.spans import SpanRecord


@pytest.fixture
def enabled():
    """Telemetry on with a clean default registry, restored after."""
    telemetry.reset()
    telemetry.enable(trace=True)
    yield telemetry.get_registry()
    telemetry.disable()
    telemetry.reset()


# ----------------------------------------------------------------------
# Registry semantics.


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc()
        registry.counter("jobs_total").inc(2.5)
        assert registry.counter("jobs_total").value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("jobs_total").inc(-1)

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("jobs", engine="native").inc()
        registry.counter("jobs", engine="efsm").inc(4)
        assert registry.counter("jobs", engine="native").value == 1
        assert registry.counter("jobs", engine="efsm").value == 4

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("jobs", a="1", b="2").inc()
        # Same label set in another order resolves to the same child.
        assert registry.counter("jobs", b="2", a="1").value == 1

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 9

    def test_gauge_callback_reads_live(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        state = {"n": 0}
        gauge.set_callback(lambda: state["n"])
        state["n"] = 5
        assert gauge.value == 5

    def test_gauge_callback_failure_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set_callback(lambda: 8)
        assert gauge.value == 8
        gauge.set_callback(lambda: 1 / 0)
        assert gauge.value == 8

    def test_histogram_observe_and_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(105.0)

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.7, 1.5, 3.0, 9.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (1.0, 2), (2.0, 3), (4.0, 4), (float("inf"), 5),
        ]

    def test_histogram_upper_bound_is_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # exactly on the bound: le="1" bucket
        assert histogram.cumulative_buckets()[0] == (1.0, 1)

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")
        with pytest.raises(ValueError):
            registry.histogram("thing")

    def test_reset_drops_families(self):
        registry = MetricsRegistry()
        registry.counter("thing").inc()
        registry.reset()
        assert registry.snapshot() == {"metrics": []}
        # and the name is free to be a different type afterwards
        registry.gauge("thing").set(1)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs", help="Jobs.", engine="efsm").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["metrics"] == [{
            "name": "jobs", "type": "counter", "help": "Jobs.",
            "samples": [{"labels": {"engine": "efsm"}, "value": 2.0}],
        }]

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.counter("n").inc()
                registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 8000
        assert registry.histogram("h").count == 8000


# ----------------------------------------------------------------------
# No-op mode.


class TestNoOpMode:
    def test_disabled_accessors_return_null_metric(self):
        telemetry.disable()
        assert telemetry.counter("x") is telemetry.NULL_METRIC
        assert telemetry.gauge("x") is telemetry.NULL_METRIC
        assert telemetry.histogram("x") is telemetry.NULL_METRIC

    def test_null_metric_absorbs_everything(self):
        telemetry.disable()
        metric = telemetry.counter("x")
        metric.inc()
        metric.dec()
        metric.set(5)
        metric.observe(1.0)
        metric.set_callback(lambda: 1)
        assert metric.value == 0.0

    def test_disabled_records_nothing(self, enabled):
        telemetry.disable()
        telemetry.counter("ghost").inc()
        with telemetry.span("ghost.span"):
            pass
        assert telemetry.snapshot() == {"metrics": []}

    def test_disabled_span_is_shared_singleton(self):
        telemetry.disable()
        assert telemetry.span("a") is telemetry.span("b", tag="x")


# ----------------------------------------------------------------------
# Spans.


class TestSpans:
    def test_span_records_wall_and_cpu_histograms(self, enabled):
        with telemetry.span("unit.work", engine="efsm"):
            pass
        snapshot = telemetry.snapshot()
        names = {family["name"] for family in snapshot["metrics"]}
        assert "ecl_span_seconds" in names
        assert "ecl_span_cpu_seconds" in names
        wall = enabled.histogram("ecl_span_seconds",
                                 span="unit.work", engine="efsm")
        assert wall.count == 1

    def test_nesting_depth_parent_and_self_wall(self, enabled):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        records = {r.name: r for r in telemetry.trace_log().entries()}
        assert records["inner"].depth == 1
        assert records["inner"].parent == "outer"
        assert records["outer"].depth == 0
        assert records["outer"].parent is None
        # outer's self wall excludes inner's wall
        assert records["outer"].self_wall <= records["outer"].wall
        assert records["outer"].self_wall == pytest.approx(
            records["outer"].wall - records["inner"].wall)

    def test_trace_ring_buffer_is_bounded(self, enabled):
        log = telemetry.install_trace(capacity=3)
        for i in range(10):
            with telemetry.span("s%d" % i):
                pass
        assert len(log) == 3
        assert [r.name for r in log.entries()] == ["s7", "s8", "s9"]

    def test_span_tags_become_labels(self, enabled):
        with telemetry.span("tagged", tenant="acme", engine="native"):
            pass
        sample = enabled.histogram(
            "ecl_span_seconds", span="tagged",
            tenant="acme", engine="native").sample()
        assert sample["count"] == 1
        assert sample["labels"] == {
            "span": "tagged", "tenant": "acme", "engine": "native"}


# ----------------------------------------------------------------------
# Profile rows (the --profile table).


def _record(name, wall, self_wall=None, cpu=0.0, parent=None, depth=0):
    return SpanRecord(name, {}, depth, parent, wall, cpu,
                      wall if self_wall is None else self_wall)


class TestProfile:
    def test_rows_partition_the_wall_exactly(self):
        entries = [
            _record("compile", 0.6),
            _record("run", 0.3),
            _record("run", 0.05),
        ]
        rows = profile_rows(entries, wall_total=1.0)
        assert [row["phase"] for row in rows] == [
            "compile", "run", "(untracked)"]
        assert rows[1]["count"] == 2
        # the rows always total the measured wall time
        assert sum(row["wall"] for row in rows) == pytest.approx(1.0)
        assert rows[-1]["wall"] == pytest.approx(0.05)

    def test_untracked_never_negative(self):
        rows = profile_rows([_record("x", 2.0)], wall_total=1.0)
        assert rows[-1]["wall"] == 0.0

    def test_format_profile_table(self):
        entries = [_record("compile", 0.75), _record("run", 0.20)]
        text = format_profile(entries, wall_total=1.0)
        assert "profile: 2 span(s), wall 1.000s (95.0% tracked)" in text
        assert "compile" in text and "(untracked)" in text
        assert "total" in text
        # total row shows the full measured wall
        assert "1.000s" in text


# ----------------------------------------------------------------------
# Prometheus formatter: the wire contract.


class TestPrometheusFormat:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert render_prometheus({"metrics": []}) == ""

    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("ecl_jobs_total", help="Jobs.",
                         engine="efsm").inc(3)
        text = render_prometheus(registry)
        assert "# HELP ecl_jobs_total Jobs." in text
        assert "# TYPE ecl_jobs_total counter" in text
        assert 'ecl_jobs_total{engine="efsm"} 3' in text
        assert text.endswith("\n")

    def test_labels_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("m", zebra="z", alpha="a", mid="m").inc()
        text = render_prometheus(registry)
        assert 'm{alpha="a",mid="m",zebra="z"} 1' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("m", path='a\\b', note='say "hi"\nbye').inc()
        text = render_prometheus(registry)
        assert 'path="a\\\\b"' in text
        assert 'note="say \\"hi\\"\\nbye"' in text
        # and the parser reads the original values back
        ((labels, value),) = parse_prometheus(text)["m"]
        assert labels == {"path": "a\\b", "note": 'say "hi"\nbye'}
        assert value == 1.0

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("m", help="line one\nline \\ two").inc()
        text = render_prometheus(registry)
        assert "# HELP m line one\\nline \\\\ two" in text

    def test_histogram_buckets_cumulative_and_terminated(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="4"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum 14" in text
        assert "lat_count 4" in text
        # cumulativity invariant as a scraper would check it
        buckets = parse_prometheus(text)["lat_bucket"]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0]["le"] == "+Inf"
        assert counts[-1] == parse_prometheus(text)["lat_count"][0][1]

    def test_histogram_labels_keep_le_last_and_sorted(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,),
                           tenant="t", engine="e").observe(0.5)
        text = render_prometheus(registry)
        assert 'lat_bucket{engine="e",tenant="t",le="1"} 1' in text

    def test_format_value(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"

    def test_round_trip_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("a_total", k="v").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c", buckets=(1.0, 2.0)).observe(0.5)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["a_total"] == [({"k": "v"}, 2.0)]
        assert parsed["b"] == [({}, 1.5)]
        assert parsed["c_count"] == [({}, 1.0)]
        assert ({"le": "+Inf"}, 1.0) in parsed["c_bucket"]


# ----------------------------------------------------------------------
# Stats renderers.


class TestStats:
    def test_quantile_from_buckets(self):
        buckets = [[1.0, 50], [2.0, 100]]
        assert quantile_from_buckets(buckets, 100, 0.25) == pytest.approx(0.5)
        assert quantile_from_buckets(buckets, 100, 0.75) == pytest.approx(1.5)
        assert quantile_from_buckets([], 0, 0.5) is None

    def test_format_snapshot_empty(self):
        assert "no metrics recorded" in format_snapshot({"metrics": []})

    def test_format_snapshot_sections(self, enabled):
        enabled.counter("jobs_total", engine="efsm").inc(3)
        enabled.gauge("depth").set(2)
        enabled.histogram("lat").observe(0.01)
        text = format_snapshot(telemetry.snapshot())
        assert "counters:" in text and "gauges:" in text
        assert "histograms:" in text
        assert "jobs_total{engine=efsm}" in text
