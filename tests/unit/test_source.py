"""Unit tests for source-text bookkeeping (spans and positions)."""

from repro.errors import ParseError
from repro.lang import parse_text
from repro.lang.source import Position, SourceBuffer, Span


class TestSourceBuffer:
    def test_position_at_start(self):
        buffer = SourceBuffer("abc\ndef")
        assert buffer.position_at(0) == Position(1, 1)

    def test_position_after_newline(self):
        buffer = SourceBuffer("abc\ndef")
        assert buffer.position_at(4) == Position(2, 1)
        assert buffer.position_at(6) == Position(2, 3)

    def test_position_clamped(self):
        buffer = SourceBuffer("ab")
        assert buffer.position_at(-5) == Position(1, 1)
        assert buffer.position_at(99).line == 1

    def test_empty_buffer(self):
        buffer = SourceBuffer("")
        assert buffer.position_at(0) == Position(1, 1)

    def test_line_text(self):
        buffer = SourceBuffer("first\nsecond\nthird")
        assert buffer.line_text(2) == "second"
        assert buffer.line_text(3) == "third"
        assert buffer.line_text(9) == ""

    def test_span_rendering(self):
        buffer = SourceBuffer("hello", filename="x.ecl")
        span = buffer.span(0, 5)
        assert str(span) == "x.ecl:1:1"


class TestSpanMerge:
    def test_merge_orders_endpoints(self):
        first = Span.point("f", 1, 1)
        second = Span.point("f", 3, 7)
        merged = first.merge(second)
        assert merged.start == Position(1, 1)
        assert merged.end == Position(3, 7)
        # Order independence.
        assert second.merge(first).start == Position(1, 1)

    def test_merge_none(self):
        span = Span.point("f", 2, 2)
        assert span.merge(None) is span


class TestDiagnosticsCarrySpans:
    def test_parse_error_has_line(self):
        source = "module m (input pure s,\n  output pure t) {\n  @@\n}"
        try:
            parse_text(source, "bad.ecl")
        except Exception as error:
            assert "bad.ecl:3" in str(error)
        else:
            raise AssertionError("expected a syntax error")

    def test_parse_error_points_at_token(self):
        source = "module m (input pure s) { await(); halt() }"
        try:
            parse_text(source, "oops.ecl")
        except ParseError as error:
            assert error.span is not None
            assert "oops.ecl" in str(error)
        else:
            raise AssertionError("expected a parse error")
