"""Unit tests driving the ``eclc`` CLI through ``main(argv)``."""

import pytest

from repro.cli import main
from repro.pipeline.registry import DEFAULT_REGISTRY

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""

#: The ``%`` operator has no RTL translation, so the hardware
#: back-ends must refuse this module while c/py/dot still work.
COUNTER = """
module counter (input pure tick, output int total)
{
    int n;
    n = 0;
    while (1) { await (tick); n = (n + 1) % 7; emit_v (total, n); }
}
"""


@pytest.fixture
def echo_file(tmp_path):
    path = tmp_path / "echo.ecl"
    path.write_text(ECHO)
    return str(path)


@pytest.fixture
def counter_file(tmp_path):
    path = tmp_path / "counter.ecl"
    path.write_text(COUNTER)
    return str(path)


class TestInfo:
    def test_lists_modules(self, echo_file, capsys):
        assert main(["info", echo_file]) == 0
        out = capsys.readouterr().out
        assert "module echo" in out and "states" in out

    def test_parse_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.ecl"
        path.write_text("module {")
        assert main(["info", str(path)]) == 1
        assert "eclc: error" in capsys.readouterr().err


class TestCompile:
    #: backend name -> files expected for a pure module named "echo"
    EXPECTED = {
        "c": ["echo.c", "echo.h"],
        "py": ["echo.py"],
        "vhdl": ["echo.vhd"],
        "verilog": ["echo.v"],
        "esterel": ["echo.strl", "echo_data.c", "echo_data.h"],
        "dot": ["echo.dot"],
    }

    @pytest.mark.parametrize("kind", sorted(EXPECTED))
    def test_each_emit_kind(self, kind, echo_file, tmp_path, capsys):
        outdir = tmp_path / ("out_" + kind)
        assert main(["compile", echo_file, "-m", "echo",
                     "--emit", kind, "-o", str(outdir)]) == 0
        produced = sorted(p.name for p in outdir.iterdir())
        assert produced == self.EXPECTED[kind]
        out = capsys.readouterr().out
        for name in self.EXPECTED[kind]:
            assert name in out

    def test_emit_choices_come_from_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["compile", "x.ecl", "-m", "m", "--emit", "fortran"])
        err = capsys.readouterr().err
        for name in DEFAULT_REGISTRY.names():
            assert name in err    # argparse lists valid choices

    def test_all_skips_failing_backends(self, counter_file, tmp_path,
                                        capsys):
        outdir = tmp_path / "out"
        assert main(["compile", counter_file, "-m", "counter",
                     "--emit", "all", "-o", str(outdir)]) == 0
        captured = capsys.readouterr()
        assert "skipping vhdl" in captured.err
        assert "skipping verilog" in captured.err
        produced = {p.name for p in outdir.iterdir()}
        assert "counter.c" in produced and "counter.dot" in produced
        assert not any(p.endswith((".vhd", ".v")) for p in produced)

    def test_single_failing_backend_is_an_error(self, counter_file,
                                                tmp_path, capsys):
        assert main(["compile", counter_file, "-m", "counter",
                     "--emit", "vhdl", "-o", str(tmp_path)]) == 1
        assert "eclc: error" in capsys.readouterr().err

    def test_unknown_module(self, echo_file, tmp_path, capsys):
        assert main(["compile", echo_file, "-m", "nope",
                     "-o", str(tmp_path)]) == 1
        assert "no module named" in capsys.readouterr().err


class TestBuild:
    def test_batch_build_writes_all_modules(self, tmp_path, capsys):
        path = tmp_path / "two.ecl"
        path.write_text(ECHO + COUNTER)
        outdir = tmp_path / "out"
        assert main(["build", str(path), "--emit", "c,dot",
                     "-o", str(outdir), "-j", "2"]) == 0
        produced = sorted(p.name for p in outdir.iterdir())
        assert produced == ["counter.c", "counter.dot", "counter.h",
                            "echo.c", "echo.dot", "echo.h"]
        out = capsys.readouterr().out
        assert "echo" in out and "counter" in out and "build" in out

    def test_build_warm_cache(self, tmp_path, capsys):
        path = tmp_path / "echo.ecl"
        path.write_text(ECHO)
        cache = str(tmp_path / "cache")
        outdir = str(tmp_path / "out")
        argv = ["build", str(path), "-o", outdir, "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 stage cache hit(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # Warm builds serve check + emit straight from the cache; the
        # intermediate stages are never even forced.
        assert "2/2 stages cached" in warm

    def test_build_reports_failures(self, tmp_path, capsys):
        path = tmp_path / "mixed.ecl"
        path.write_text(ECHO + """
module broken (input pure go, output pure done)
{
    while (1) { await (go); emit (missing); }
}
""")
        assert main(["build", str(path), "-o",
                     str(tmp_path / "out")]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out


class TestSimulate:
    def test_trace_run(self, echo_file, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("# warm up\nping\n\nping\n")
        assert main(["simulate", echo_file, "-m", "echo",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "instant 2" in out and "pong" in out

    def test_vcd_dump_matches_reference_format(self, echo_file,
                                               tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("ping\n\nping\n")
        vcd_path = tmp_path / "run.vcd"
        assert main(["simulate", echo_file, "-m", "echo",
                     "--trace", str(trace), "--vcd",
                     str(vcd_path)]) == 0
        assert "wrote %s" % vcd_path in capsys.readouterr().out
        text = vcd_path.read_text()
        # Same header shape as the checked-in examples/door_ctrl.vcd.
        import os
        reference = open(os.path.join(os.path.dirname(__file__), "..",
                                      "..", "examples",
                                      "door_ctrl.vcd")).read()
        for ref_line, line in (
                ("$date ecl reproduction $end", "$date"),
                ("$timescale 1 ns $end", "$timescale"),
                ("$enddefinitions $end", "$enddefinitions")):
            assert ref_line in reference
            assert any(ln.startswith(line) for ln in text.splitlines())
        assert "$scope module echo $end" in text
        assert "$var wire 1" in text and "ping" in text
        assert "$dumpvars" in text
        # Time markers and at least one presence pulse were recorded.
        assert "#1" in text and "1" in text

    def test_bad_trace_value(self, echo_file, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("ping=zebra\n")
        assert main(["simulate", echo_file, "-m", "echo",
                     "--trace", str(trace)]) == 1
        assert "bad value" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["efsm", "interp"])
    def test_undeclared_signal_is_located_diagnostic(self, echo_file,
                                                     tmp_path, capsys,
                                                     engine):
        """A stimulus referencing a signal the module does not declare
        must exit non-zero with a trace-located message, not a bare
        engine error (let alone a KeyError)."""
        trace = tmp_path / "trace.txt"
        trace.write_text("ping\nnosuch\n")
        assert main(["simulate", echo_file, "-m", "echo",
                     "--engine", engine, "--trace", str(trace)]) == 1
        err = capsys.readouterr().err
        assert "trace line 2" in err
        assert "does not declare input signal 'nosuch'" in err
        assert "inputs: ping" in err

    def test_output_signal_in_trace_rejected(self, echo_file, tmp_path,
                                             capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("pong\n")
        assert main(["simulate", echo_file, "-m", "echo",
                     "--trace", str(trace)]) == 1
        err = capsys.readouterr().err
        assert "trace line 1" in err and "'pong'" in err

    def test_value_on_pure_signal_rejected(self, echo_file, tmp_path,
                                           capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("ping=3\n")
        assert main(["simulate", echo_file, "-m", "echo",
                     "--trace", str(trace)]) == 1
        err = capsys.readouterr().err
        assert "trace line 1" in err and "pure" in err


class TestDot:
    def test_dot_to_stdout(self, echo_file, capsys):
        assert main(["dot", echo_file, "-m", "echo"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph") and "echo" in out
