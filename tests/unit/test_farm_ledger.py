"""Unit tests for the content-addressed TraceLedger."""

import json
import os

import pytest

from repro.farm import SimJob, StimulusSpec, TraceLedger
from repro.farm.engines import make_record


@pytest.fixture
def ledger(tmp_path):
    return TraceLedger(str(tmp_path / "traces"))


def sample_job(index=0, **kwargs):
    return SimJob(design="d", module="m",
                  stimulus=StimulusSpec.random(length=2), index=index,
                  **kwargs)


def sample_records():
    return [make_record({"ping": None}, {"pong"}, {}),
            make_record({}, set(), {})]


class TestTraceLedger:
    def test_put_then_load_roundtrips(self, ledger):
        job = sample_job()
        digest, path = ledger.put(job, sample_records())
        assert os.path.exists(path)
        header, records = ledger.load(digest)
        assert header["job_id"] == job.job_id
        assert header["instants"] == 2
        assert records == sample_records()

    def test_content_addressing_dedupes_objects(self, ledger):
        digest_a, path_a = ledger.put(sample_job(), sample_records())
        digest_b, path_b = ledger.put(sample_job(), sample_records())
        assert digest_a == digest_b and path_a == path_b
        # ... but the index keeps both runs.
        assert len(ledger) == 2

    def test_different_traces_get_different_addresses(self, ledger):
        digest_a, _ = ledger.put(sample_job(), sample_records())
        digest_b, _ = ledger.put(sample_job(index=1), sample_records())
        assert digest_a != digest_b  # header includes the job identity

    def test_index_records_are_jsonl(self, ledger):
        ledger.put(sample_job(), sample_records())
        index_path = os.path.join(ledger.root, "ledger.jsonl")
        lines = [json.loads(line)
                 for line in open(index_path) if line.strip()]
        assert len(lines) == 1
        assert lines[0]["design"] == "d"
        assert lines[0]["trace"]

    def test_find_returns_latest_entry_for_job(self, ledger):
        job = sample_job()
        assert ledger.find(job.job_id) is None
        ledger.put(job, sample_records())
        entry = ledger.find(job.job_id)
        assert entry is not None and entry["module"] == "m"

    def test_vcd_sidecar_written_once(self, ledger):
        digest, path = ledger.put(sample_job(), sample_records(),
                                  vcd_text="$date x $end\n")
        vcd_path = path[:-len(".jsonl")] + ".vcd"
        assert open(vcd_path).read().startswith("$date")

    def test_objects_shard_by_digest_prefix(self, ledger):
        digest, path = ledger.put(sample_job(), sample_records())
        assert os.path.basename(os.path.dirname(path)) == digest[:2]

    def test_torn_index_tail_is_skipped_with_warning(self, ledger):
        ledger.put(sample_job(), sample_records())
        ledger.put(sample_job(index=1), sample_records())
        index_path = os.path.join(ledger.root, "ledger.jsonl")
        with open(index_path, "a") as handle:
            handle.write('{"job_id": "cut-by-a-cra')
        # a crash mid-append must not poison every later read
        with pytest.warns(RuntimeWarning, match="torn"):
            entries = ledger.entries()
            assert len(ledger) == 2
            assert ledger.find(sample_job().job_id) is not None
        assert len(entries) == 2

    def test_fault_hook_failure_writes_nothing(self, ledger):
        calls = []

        def hook(op, key):
            calls.append((op, key))
            raise OSError("injected ledger fault")

        ledger.fault_hook = hook
        with pytest.raises(OSError):
            ledger.put(sample_job(), sample_records())
        assert calls == [("put", sample_job().job_id)]
        assert len(ledger) == 0  # the failed put left no index entry
        ledger.fault_hook = None
        ledger.put(sample_job(), sample_records())
        assert len(ledger) == 1

    def test_storage_fault_escalates_only_when_asked(self, tmp_path):
        """Farm mode keeps the error-row contract; serving mode
        (raise_storage_errors) re-raises so the pool can retry."""
        from repro.farm import WorkerState
        source = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""
        job = SimJob(design="echo", module="echo",
                     stimulus=StimulusSpec.explicit([{"ping": None}]))

        def hook(op, key):
            raise OSError("disk detached")

        farm_state = WorkerState({"echo": source},
                                 ledger_root=str(tmp_path / "a"))
        farm_state.ledger.fault_hook = hook
        result = farm_state.run_job(job)
        assert result.status == "error"
        assert "disk detached" in result.error

        serve_state = WorkerState({"echo": source},
                                  ledger_root=str(tmp_path / "b"),
                                  raise_storage_errors=True)
        serve_state.ledger.fault_hook = hook
        with pytest.raises(OSError, match="disk detached"):
            serve_state.run_job(job)

    def test_record_vcd_flows_through_worker(self, tmp_path):
        from repro.farm import WorkerState
        source = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""
        state = WorkerState({"echo": source},
                            ledger_root=str(tmp_path / "led"))
        job = SimJob(design="echo", module="echo", record_vcd=True,
                     stimulus=StimulusSpec.explicit(
                         [{"ping": None}, {}]))
        result = state.run_job(job)
        assert result.ok and result.trace_path
        vcd = result.trace_path[:-len(".jsonl")] + ".vcd"
        text = open(vcd).read()
        assert "$scope module echo $end" in text
        assert "ping" in text and "pong" in text
