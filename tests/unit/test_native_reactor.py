"""Unit coverage of the native reaction engine's runtime surface.

The cross-engine behavioural guarantees live in
``tests/property/test_native_equivalence.py``; these tests pin the
integration seams: input diagnostics parity, the pipeline stage and
backend registration, code-bundle caching, the standalone emitted
module, and the reactor conveniences.
"""

import os

import pytest

from repro.codegen.py_backend import EfsmReactor
from repro.errors import CompileError, EvalError
from repro.pipeline import ArtifactCache, Pipeline
from repro.pipeline.registry import DEFAULT_REGISTRY
from repro.runtime.native import NativeReactor, compile_native

COUNTER_ECL = """
module counter (input pure tick, input int load,
                output int level, output pure high)
{
    int value;

    while (1) {
        await (tick | load);
        present (load) { value = load; }
        present (tick) { value = value + 1; }
        emit_v (level, value);
        if (value > 5) { emit (high); }
    }
}
"""


@pytest.fixture(scope="module")
def handle():
    build = Pipeline().compile_text(COUNTER_ECL, filename="counter.ecl")
    return build.module("counter")


class TestDiagnosticsParity:
    """Bad stimulus must produce the exact same messages as the other
    engines — the CLI's trace-line diagnostics rely on them."""

    def _messages(self, reactor, **kwargs):
        with pytest.raises(EvalError) as caught:
            reactor.react(**kwargs)
        return str(caught.value)

    def test_unknown_input_matches_efsm_reactor(self, handle):
        native = handle.reactor(engine="native")
        efsm = handle.reactor(engine="efsm")
        assert self._messages(native, inputs=["ghost"]) == \
            self._messages(efsm, inputs=["ghost"])

    def test_non_input_direction_rejected(self, handle):
        native = handle.reactor(engine="native")
        message = self._messages(native, inputs=["level"])
        assert "does not declare input signal 'level'" in message
        assert "load, tick" in message

    def test_value_on_pure_input_matches_efsm_reactor(self, handle):
        native = handle.reactor(engine="native")
        efsm = handle.reactor(engine="efsm")
        assert self._messages(native, values={"tick": 3}) == \
            self._messages(efsm, values={"tick": 3})


class TestReactorSurface:
    def test_drop_in_convenience_methods(self, handle):
        native = handle.reactor(engine="native")
        assert native.input_signals() == ["load", "tick"]
        native.react()
        native.react(values={"load": 4})
        out = native.react(inputs=["tick"])
        assert out.emitted == {"level"}
        assert out.values == {"level": 5}
        assert native.signal_value("level") == 5
        assert native.variable("value") == 5
        assert native.instants == 3

    def test_reset_restarts_from_initial_state(self, handle):
        native = handle.reactor(engine="native")
        native.react()
        native.react(values={"load": 9})
        native.reset()
        assert native.state == native.code.initial
        assert not native.terminated
        assert native.instants == 0

    def test_counter_counts_react_instants(self, handle):
        from repro.cost import CycleCounter

        counter = CycleCounter()
        native = handle.reactor(engine="native")
        counted = NativeReactor(handle.efsm(), counter=counter)
        for reactor in (native, counted):
            reactor.react()
            reactor.react(inputs=["tick"])
        assert counter.counts.get("react") == 2

    def test_react_after_termination_is_inert(self, handle):
        native = handle.reactor(engine="native")
        native.terminated = True
        out = native.react(inputs=["tick"])
        assert out.terminated
        assert native.react_many([{"tick": None}]) == []


class TestPipelineIntegration:
    def test_reactor_engine_native(self, handle):
        native = handle.reactor(engine="native")
        assert isinstance(native, NativeReactor)

    def test_unknown_engine_names_native(self, handle):
        with pytest.raises(CompileError) as caught:
            handle.reactor(engine="warp")
        assert "'native'" in str(caught.value)

    def test_native_stage_is_cached(self):
        pipeline = Pipeline(cache=ArtifactCache.memory())
        build = pipeline.compile_text(COUNTER_ECL, filename="counter.ecl")
        code = build.module("counter").native_code()
        hits = pipeline.cache.stats.as_dict()["hits"]
        again = pipeline.compile_text(COUNTER_ECL, filename="counter.ecl")
        assert again.module("counter").native_code() is code
        assert pipeline.cache.stats.as_dict()["hits"] > hits

    def test_backend_registered(self):
        assert "native" in DEFAULT_REGISTRY.names()
        backend = DEFAULT_REGISTRY.get("native")
        assert backend.requires == ("efsm",)

    def test_emitted_files(self, handle):
        files = handle.emit("native")
        assert sorted(files) == ["counter_native.py",
                                 "counter_reactions.py"]
        assert "STATE_FUNCS" in files["counter_reactions.py"]

    def test_standalone_module_round_trip(self, handle):
        files = handle.emit("native")
        namespace = {}
        exec(compile(files["counter_native.py"], "counter_native.py",
                     "exec"), namespace)
        reactor = namespace["reactor"]()
        reactor.react()
        reactor.react(values={"load": 2})
        out = reactor.react(inputs=["tick"])
        assert out.values == {"level": 3}

    def test_cli_simulate_engine_native(self, tmp_path, capsys):
        from repro.cli import main

        design = tmp_path / "counter.ecl"
        design.write_text(COUNTER_ECL)
        trace = tmp_path / "trace.txt"
        trace.write_text("\nload=4\ntick\ntick\n")
        outputs = {}
        for engine in ("efsm", "native"):
            assert main(["simulate", str(design), "-m", "counter",
                         "--trace", str(trace), "--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["native"] == outputs["efsm"]
        assert "level=6" in outputs["native"]

    def test_cli_simulate_native_trace_diagnostics(self, tmp_path,
                                                   capsys):
        from repro.cli import main

        design = tmp_path / "counter.ecl"
        design.write_text(COUNTER_ECL)
        trace = tmp_path / "trace.txt"
        trace.write_text("\nghost\n")
        assert main(["simulate", str(design), "-m", "counter",
                     "--trace", str(trace),
                     "--engine", "native"]) == 1
        err = capsys.readouterr().err
        assert "trace line 2" in err
        assert "does not declare input signal 'ghost'" in err


FALLBACK_IN_LOOP_ECL = """
int helper (int v) { return v * 2 + 1; }

module looper (input pure tick, output int acc)
{
    int total;
    int i;

    while (1) {
        await (tick);
        for (i = 0; i < 4; i++) {
            total = helper(total);
        }
        emit_v (acc, total);
    }
}
"""


class TestFallbackInsideNestedBlocks:
    """An unlowerable construct (here: a C function call) reached
    *after* the lowerer entered a nested block must roll the indent
    back too — a regression here produces syntactically invalid
    generated source (IndentationError at bind time)."""

    def test_call_inside_lowered_loop_falls_back_cleanly(self):
        build = Pipeline().compile_text(FALLBACK_IN_LOOP_ECL,
                                        filename="looper.ecl")
        handle = build.module("looper")
        code = compile_native(handle.efsm())
        assert code.fallback_ops > 0  # the helper() call is residue
        native = handle.reactor(engine="native")
        efsm = handle.reactor(engine="efsm")
        for reactor in (native, efsm):
            reactor.react()
        for _ in range(3):
            out_native = native.react(inputs=["tick"])
            out_efsm = efsm.react(inputs=["tick"])
            assert out_native.emitted == out_efsm.emitted
            assert out_native.values == out_efsm.values
        assert native.variable("total") == efsm.variable("total")


class TestCompiledCode:
    def test_counter_design_lowers_completely(self, handle):
        code = compile_native(handle.efsm())
        assert code.fallback_ops == 0
        assert code.lowered_ops > 0
        assert code.state_count == handle.efsm().state_count
        assert "native counter" in code.describe()

    def test_code_bundle_pickles(self, handle):
        import pickle

        code = compile_native(handle.efsm())
        clone = pickle.loads(pickle.dumps(code))
        assert clone.source == code.source
        reactor = NativeReactor(handle.efsm(), code=clone)
        reactor.react()
        assert reactor.react(inputs=["tick"]).values == {"level": 1}


class TestHotObjectLayout:
    """The __slots__ satellite: per-instant objects carry no dict."""

    def test_signal_slot_and_tree_nodes_are_compact(self):
        from repro.efsm.machine import (DoAction, DoEmit, Leaf, TestData,
                                        TestSignal)
        from repro.lang.types import PURE
        from repro.runtime.ceval import Env
        from repro.runtime.memory import AddressSpace
        from repro.runtime.signals import SignalSlot

        slot = SignalSlot("s", PURE, AddressSpace(), "input")
        assert not hasattr(slot, "__dict__")
        assert not hasattr(Env(), "__dict__")
        for node in (Leaf(), TestSignal(), TestData(), DoAction(),
                     DoEmit()):
            assert not hasattr(node, "__dict__")

    def test_efsm_walks_are_cached(self, handle):
        efsm = handle.efsm()
        assert efsm.transition_count() == efsm.transition_count()
        assert efsm._transition_count is not None
        assert efsm.emitted_signals() is efsm.emitted_signals()
        assert efsm.tested_inputs() is efsm.tested_inputs()


class TestWholeTraceDrivers:
    """compile_trace_driver / run_trace: the farm's zero-dict fast path."""

    def _records_by_steps(self, handle, driver, seed):
        import random

        from repro.farm.jobs import random_instant

        reactor = NativeReactor(handle.efsm(), code=handle.native_code())
        rng = random.Random(seed)
        alphabet = [(s.name, s.is_pure) for s in reactor.signals.inputs()
                    if s.is_pure or s.type.is_scalar()]
        records = []
        for _ in range(driver.length):
            instant = random_instant(rng, alphabet, driver.present_prob,
                                     driver.value_range)
            out = reactor.react(
                inputs=[n for n, v in instant.items() if v is None],
                values={n: v for n, v in instant.items() if v is not None})
            records.append((dict(sorted(instant.items())),
                            sorted(out.emitted),
                            dict(sorted(out.values.items()))))
        for _ in range(driver.budget - driver.length):
            out = reactor.react()
            records.append(({}, sorted(out.emitted),
                            dict(sorted(out.values.items()))))
        return records

    def test_driver_matches_step_loop(self, handle):
        driver = handle.trace_driver(20, 0.5, (0, 255), budget=26)
        assert driver.length == 20 and driver.budget == 26
        reactor = NativeReactor(handle.efsm(), code=handle.native_code())
        got = reactor.run_trace(driver, seed=99)
        expected = self._records_by_steps(handle, driver, seed=99)
        assert len(got) == 26
        for record, (inputs, emitted, values) in zip(got, expected):
            assert dict(sorted(record["inputs"].items())) == inputs
            assert record["emitted"] == emitted
            assert record["values"] == values
        # Same (design, spec) pair -> the cached stage artifact.
        assert handle.trace_driver(20, 0.5, (0, 255), budget=26) is driver
        other = handle.trace_driver(21, 0.5, (0, 255), budget=26)
        assert other is not driver
        # The driver is a picklable compile artifact.
        import pickle

        clone = pickle.loads(pickle.dumps(driver))
        reactor2 = NativeReactor(handle.efsm(), code=handle.native_code())
        assert reactor2.run_trace(clone, seed=99) == got

    def test_driver_horizon_clips_drawn_prefix(self, handle):
        driver = handle.trace_driver(30, 0.5, (0, 255), budget=5)
        assert driver.length == 5 and driver.budget == 5
        reactor = NativeReactor(handle.efsm(), code=handle.native_code())
        assert len(reactor.run_trace(driver, seed=4)) == 5

    def test_driver_marks_coverage(self, handle):
        from repro.verify.coverage import CoverageMap

        driver = handle.trace_driver(40, 0.7, (0, 9), budget=40)
        reactor = NativeReactor(handle.efsm(), code=handle.native_code())
        coverage = CoverageMap.for_efsm(handle.efsm())
        reactor.enable_coverage(coverage)
        reactor.run_trace(driver, seed=11)
        assert coverage.covered_states > 0
        assert coverage.covered_transitions > 0


class TestPersistentCodeCache:
    """The marshal-backed on-disk layer under the source->code cache."""

    def test_warm_start_loads_marshalled_code(self, handle, tmp_path):
        from repro.runtime import native

        source = handle.native_code().source
        root = str(tmp_path / "pyc")
        previous = native._CODE_CACHE_DIR
        native.enable_code_cache(root)
        try:
            native._CODE_CACHE.pop(source, None)
            first = native._compiled(source)
            cached = [name for name in os.listdir(root)
                      if name.endswith(".nrc")]
            assert cached, "no marshalled code written"
            # A cold process (simulated: drop the memory layer) must
            # load the marshalled bytecode, not recompile.
            native._CODE_CACHE.pop(source, None)
            compile_calls = []

            def counting_compile(*args, **kwargs):
                compile_calls.append(args)
                return compile(*args, **kwargs)

            native.compile = counting_compile
            try:
                warm = native._compiled(source)
            finally:
                del native.compile
            assert not compile_calls
            assert warm.co_names == first.co_names
        finally:
            native.enable_code_cache(previous)

    def test_corrupt_cache_entry_recompiles(self, handle, tmp_path):
        from repro.runtime import native

        source = handle.native_code().source
        root = str(tmp_path / "pyc")
        previous = native._CODE_CACHE_DIR
        native.enable_code_cache(root)
        try:
            path = native._code_cache_path(root, source)
            with open(path, "wb") as out:
                out.write(b"not marshal data")
            native._CODE_CACHE.pop(source, None)
            assert native._compiled(source) is not None
        finally:
            native.enable_code_cache(previous)
