"""Unit tests for ServeClient's transient-fault retry behavior."""

import socket
import threading
import time

import pytest

from repro.errors import EclError
from repro.serve import (QueueFullError, ServeClient, SimulationService,
                         make_server)


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestGetRetries:
    def test_get_retries_until_service_listens(self):
        """A GET against a service that is restarting (nothing bound
        yet) retries with backoff instead of failing the watch loop."""
        port = free_port()
        client = ServeClient(port=port, get_retries=8,
                             retry_backoff=0.05)
        service = SimulationService(workers=0)
        server_box = {}

        def start_late():
            time.sleep(0.25)
            server_box["server"] = make_server(service, port=port)
            threading.Thread(target=server_box["server"].serve_forever,
                             daemon=True).start()

        thread = threading.Thread(target=start_late, daemon=True)
        thread.start()
        try:
            assert client.status()["accepting"] is True
        finally:
            thread.join(timeout=5)
            server_box["server"].shutdown()
            server_box["server"].server_close()
            service.shutdown(drain=False, timeout=5)

    def test_exhausted_retries_keep_the_unreachable_message(self):
        client = ServeClient(port=free_port(), get_retries=1,
                             retry_backoff=0.01)
        with pytest.raises(EclError,
                           match="cannot reach simulation service"):
            client.status()

    def test_post_does_not_retry_transport_errors_by_default(self):
        client = ServeClient(port=free_port(), get_retries=5,
                             retry_backoff=0.01)
        started = time.monotonic()
        with pytest.raises(EclError, match="cannot reach"):
            client.submit({"designs": {}, "jobs": []})
        # one immediate failure: no backoff sleeps were taken
        assert time.monotonic() - started < 1.0


class TestStreamReconnect:
    def test_reconnect_skips_already_served_rows(self, monkeypatch):
        """A dropped stream resumes from its yield count: no row is
        duplicated, none skipped."""
        rows = [{"index": i} for i in range(6)]
        attempts = []

        def flaky_stream(path, skip):
            attempts.append(skip)
            if len(attempts) == 1:
                yield from rows[skip:2]
                raise ConnectionResetError("stream cut")
            yield from rows[skip:]

        client = ServeClient(get_retries=3, retry_backoff=0.01)
        monkeypatch.setattr(client, "_stream_once", flaky_stream)
        got = list(client.stream_results("b1"))
        assert got == rows
        assert attempts == [0, 2]  # resumed exactly past the cut

    def test_stream_gives_up_after_budget(self, monkeypatch):
        def always_cut(path, skip):
            raise ConnectionResetError("down for good")
            yield  # pragma: no cover - makes this a generator

        client = ServeClient(get_retries=2, retry_backoff=0.01)
        monkeypatch.setattr(client, "_stream_once", always_cut)
        with pytest.raises(EclError, match="cannot reach"):
            list(client.stream_results("b1"))


class TestSubmitRetries:
    def make_flaky(self, responses):
        client = ServeClient(retry_backoff=0.01)
        calls = []

        def fake_request(method, path, body=None):
            calls.append(method)
            return responses[min(len(calls), len(responses)) - 1]

        client._request_once = fake_request
        return client, calls

    def test_submit_retries_429_when_opted_in(self):
        client, calls = self.make_flaky([
            (429, {"error": "queue_full", "detail": "queue_full: x"}),
            (429, {"error": "queue_full", "detail": "queue_full: x"}),
            (200, {"batch": "b", "jobs": 1}),
        ])
        admitted = client.submit({"spec": 1}, retries=3)
        assert admitted["batch"] == "b"
        assert len(calls) == 3

    def test_submit_retries_503_when_opted_in(self):
        client, calls = self.make_flaky([
            (503, {"error": "service is shutting down"}),
            (200, {"batch": "b", "jobs": 1}),
        ])
        assert client.submit({"spec": 1}, retries=1)["batch"] == "b"
        assert len(calls) == 2

    def test_submit_fails_fast_by_default(self):
        client, calls = self.make_flaky([
            (429, {"error": "queue_full", "detail": "queue_full: x"}),
            (200, {"batch": "b"}),
        ])
        with pytest.raises(QueueFullError):
            client.submit({"spec": 1})
        assert len(calls) == 1

    def test_submit_exhausted_retries_raise_the_last_rejection(self):
        client, calls = self.make_flaky([
            (429, {"error": "queue_full", "detail": "queue_full: x"}),
        ])
        with pytest.raises(QueueFullError):
            client.submit({"spec": 1}, retries=2)
        assert len(calls) == 3

    def test_non_retryable_errors_never_retry(self):
        client, calls = self.make_flaky([
            (400, {"error": "bad spec"}),
            (200, {"batch": "b"}),
        ])
        with pytest.raises(EclError, match="bad spec"):
            client.submit({"spec": 1}, retries=5)
        assert len(calls) == 1
