"""Unit tests for SimulationService: warmth, tenancy, faults, drain."""

import pytest

from repro.errors import EclError
from repro.serve import QueueFullError, SimulationService

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""

ONCE = """
module once (input pure go, output pure done)
{
    await (go);
    emit (done);
}
"""


def document(source=ECHO, module="echo", engines=("efsm",), traces=2,
             length=8, label="d"):
    return {
        "designs": {label: {"text": source}},
        "jobs": [{"design": label, "modules": [module],
                  "engines": list(engines), "traces": traces,
                  "length": length}],
    }


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    return SimulationService(**kwargs)


class TestSubmission:
    def test_submit_runs_batch_and_streams_results(self):
        service = make_service()
        try:
            batch = service.submit(document(traces=3))
            rows = list(batch.stream(timeout=30))
            assert len(rows) == 3
            assert all(r.status == "ok" for r in rows)
            assert batch.done
        finally:
            service.shutdown()

    def test_results_match_fresh_worker_state(self):
        """Service results are the farm's results: same jobs, same
        seeds, same stable serialization."""
        from repro.farm import WorkerState
        from repro.farm.spec import expand_document, load_designs

        doc = document(traces=2)
        service = make_service()
        try:
            batch = service.submit(doc)
            assert batch.wait(timeout=30)
        finally:
            service.shutdown()
        designs = load_designs(doc["designs"], None, "<test>")
        jobs = expand_document(doc, designs)
        direct = [WorkerState(designs).run_job(j) for j in jobs]
        service_rows = sorted(batch.results, key=lambda r: r.index)
        assert [r.to_dict(volatile=False) for r in service_rows] == \
            [r.to_dict(volatile=False) for r in direct]

    def test_file_path_designs_rejected(self):
        service = make_service(workers=0)
        doc = {"designs": {"d": "evil/../../etc/passwd"},
               "jobs": [{"design": "d"}]}
        with pytest.raises(EclError, match="inline"):
            service.submit(doc)

    def test_bad_document_rejected(self):
        service = make_service(workers=0)
        with pytest.raises(EclError, match="JSON object"):
            service.submit(["not", "a", "dict"])
        with pytest.raises(EclError, match="designs"):
            service.submit({"jobs": [{"design": "d"}]})

    def test_unknown_batch_raises(self):
        service = make_service(workers=0)
        with pytest.raises(EclError, match="unknown batch"):
            service.batch("nope")


class TestBackpressure:
    def test_queue_full_rejects_batch_atomically(self):
        # workers=0: nothing drains the queue, so depth is exact.
        service = make_service(workers=0, queue_depth=3)
        service.submit(document(traces=2))
        with pytest.raises(QueueFullError, match="queue_full"):
            service.submit(document(traces=2))
        # the rejected batch admitted nothing; a fitting one still goes
        service.submit(document(traces=1))
        stats = service.queue.stats_dict()
        assert stats["queued"] == 3
        assert stats["rejected"] == 2

    def test_priority_orders_queued_work(self):
        service = make_service(workers=0, queue_depth=16)
        low = service.submit(document(traces=1), priority=0)
        high = service.submit(document(traces=1), priority=9)
        mid = service.submit(document(traces=1), priority=4)
        order = []
        while True:
            entry = service.queue.get(timeout=0)
            if entry is None:
                break
            order.append(entry.batch.id)
        assert order == [high.id, mid.id, low.id]


class TestWarmPool:
    def test_repeat_submission_has_zero_compile_misses(self):
        service = make_service()
        try:
            first = service.submit(document(traces=2))
            assert first.wait(timeout=30)
            space = service._space("default")
            misses_before = space.cache.stats.misses
            second = service.submit(document(traces=2))
            assert second.wait(timeout=30)
            assert space.cache.stats.misses == misses_before
            assert [r.status for r in second.results] == ["ok", "ok"]
        finally:
            service.shutdown()

    def test_changed_design_drops_only_its_stale_build(self):
        service = make_service()
        try:
            batch = service.submit(document())
            assert batch.wait(timeout=30)
            state = service._space("default").state
            assert "d" in state._builds
            warm = state._builds["d"]
            # same source: the warm build survives adoption
            service.submit(document()).wait(timeout=30)
            assert state._builds["d"] is warm
            # different source under the same label: build dropped
            changed = service.submit(
                document(source=ONCE, module="once"))
            assert changed.wait(timeout=30)
            assert state._builds["d"] is not warm
            # the rebuilt design really is `once` now (terminates on
            # go; "ok" when the random trace never presents go)
            assert all(r.status in ("ok", "terminated")
                       for r in changed.results)
            assert all(r.module == "once" for r in changed.results)
        finally:
            service.shutdown()


class TestWorkerDeath:
    def test_crashed_worker_retries_job_to_success(self):
        service = make_service(workers=1, max_attempts=3)
        crashes = {"left": 2}

        def fault(entry):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise MemoryError("injected")

        service.pool.fault_hook = fault
        try:
            batch = service.submit(document(traces=1))
            assert batch.wait(timeout=30)
            assert [r.status for r in batch.results] == ["ok"]
            assert service.pool.worker_deaths == 2
        finally:
            service.shutdown()

    def test_exhausted_retries_become_error_result_not_hang(self):
        service = make_service(workers=1, max_attempts=2)
        service.pool.fault_hook = lambda entry: (_ for _ in ()).throw(
            MemoryError("always"))
        try:
            batch = service.submit(document(traces=1))
            assert batch.wait(timeout=30)
            (row,) = batch.results
            assert row.status == "error"
            assert "worker died (2 attempt(s))" in row.error
            # the synthesized row still identifies its job
            assert row.job_id == batch.jobs[0].job_id
        finally:
            service.shutdown()


class TestTenancy:
    def test_tenants_get_isolated_ledger_shards(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            alice = service.submit(document(traces=1), tenant="alice")
            bob = service.submit(document(source=ONCE, module="once",
                                          traces=1), tenant="bob")
            assert alice.wait(timeout=30) and bob.wait(timeout=30)
            alice_rows = service.ledger_entries("alice")
            bob_rows = service.ledger_entries("bob")
            assert len(alice_rows) == 1 and len(bob_rows) == 1
            assert alice_rows[0]["module"] == "echo"
            assert bob_rows[0]["module"] == "once"
        finally:
            service.shutdown()

    def test_trace_fetch_denied_across_tenants(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            batch = service.submit(document(traces=1), tenant="alice")
            assert batch.wait(timeout=30)
            digest = batch.results[0].trace_digest
            header, records = service.fetch_trace("alice", digest)
            assert header["module"] == "echo"
            assert len(records) == header["instants"]
            # same digest, other tenant: not servable, even though the
            # content-addressed object exists on disk.
            with pytest.raises(EclError, match="no trace"):
                service.fetch_trace("bob", digest)
        finally:
            service.shutdown()

    def test_tenant_caches_are_namespaced_on_disk(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            service.submit(document(traces=1), tenant="alice") \
                .wait(timeout=30)
            service.submit(document(traces=1), tenant="bob") \
                .wait(timeout=30)
            ns = tmp_path / "artifacts" / "ns"
            assert (ns / "alice").is_dir()
            assert (ns / "bob").is_dir()
        finally:
            service.shutdown()

    def test_bad_tenant_name_rejected(self):
        service = make_service(workers=0)
        for name in ("", "../escape", "a/b", ".hidden", "x" * 80):
            with pytest.raises(EclError, match="tenant"):
                service.submit(document(), tenant=name)


class TestShutdown:
    def test_graceful_drain_finishes_queued_work(self):
        service = make_service(workers=1)
        batch = service.submit(document(traces=4))
        assert service.shutdown(drain=True, timeout=60)
        assert batch.done
        assert all(r.status == "ok" for r in batch.results)
        with pytest.raises(EclError, match="shutting down"):
            service.submit(document())

    def test_non_drain_shutdown_cancels_queued_jobs(self):
        # workers=0: every job is still queued at shutdown time.
        service = make_service(workers=0, queue_depth=16)
        batch = service.submit(document(traces=3))
        service.shutdown(drain=False, timeout=5)
        assert batch.done
        assert all(r.status == "error" for r in batch.results)
        assert all("cancelled" in r.error for r in batch.results)

    def test_status_dict_shape(self):
        service = make_service(workers=0)
        status = service.status_dict()
        assert status["accepting"] is True
        assert status["queue"]["depth"] == service.queue.depth
        assert status["pool"]["workers"] == service.pool.workers
        assert status["batches"] == []
        assert status["tenants"] == []
