"""Unit tests for SimulationService: warmth, tenancy, faults, drain."""

import json
import time
import warnings

import pytest

from repro.errors import EclError
from repro.serve import QueueFullError, SimulationService

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""

ONCE = """
module once (input pure go, output pure done)
{
    await (go);
    emit (done);
}
"""


def document(source=ECHO, module="echo", engines=("efsm",), traces=2,
             length=8, label="d"):
    return {
        "designs": {label: {"text": source}},
        "jobs": [{"design": label, "modules": [module],
                  "engines": list(engines), "traces": traces,
                  "length": length}],
    }


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    return SimulationService(**kwargs)


class TestSubmission:
    def test_submit_runs_batch_and_streams_results(self):
        service = make_service()
        try:
            batch = service.submit(document(traces=3))
            rows = list(batch.stream(timeout=30))
            assert len(rows) == 3
            assert all(r.status == "ok" for r in rows)
            assert batch.done
        finally:
            service.shutdown()

    def test_results_match_fresh_worker_state(self):
        """Service results are the farm's results: same jobs, same
        seeds, same stable serialization."""
        from repro.farm import WorkerState
        from repro.farm.spec import expand_document, load_designs

        doc = document(traces=2)
        service = make_service()
        try:
            batch = service.submit(doc)
            assert batch.wait(timeout=30)
        finally:
            service.shutdown()
        designs = load_designs(doc["designs"], None, "<test>")
        jobs = expand_document(doc, designs)
        direct = [WorkerState(designs).run_job(j) for j in jobs]
        service_rows = sorted(batch.results, key=lambda r: r.index)
        assert [r.to_dict(volatile=False) for r in service_rows] == \
            [r.to_dict(volatile=False) for r in direct]

    def test_file_path_designs_rejected(self):
        service = make_service(workers=0)
        doc = {"designs": {"d": "evil/../../etc/passwd"},
               "jobs": [{"design": "d"}]}
        with pytest.raises(EclError, match="inline"):
            service.submit(doc)

    def test_bad_document_rejected(self):
        service = make_service(workers=0)
        with pytest.raises(EclError, match="JSON object"):
            service.submit(["not", "a", "dict"])
        with pytest.raises(EclError, match="designs"):
            service.submit({"jobs": [{"design": "d"}]})

    def test_unknown_batch_raises(self):
        service = make_service(workers=0)
        with pytest.raises(EclError, match="unknown batch"):
            service.batch("nope")


class TestBackpressure:
    def test_queue_full_rejects_batch_atomically(self):
        # workers=0: nothing drains the queue, so depth is exact.
        service = make_service(workers=0, queue_depth=3)
        service.submit(document(traces=2))
        with pytest.raises(QueueFullError, match="queue_full"):
            service.submit(document(traces=2))
        # the rejected batch admitted nothing; a fitting one still goes
        service.submit(document(traces=1))
        stats = service.queue.stats_dict()
        assert stats["queued"] == 3
        assert stats["rejected"] == 2

    def test_priority_orders_queued_work(self):
        service = make_service(workers=0, queue_depth=16)
        low = service.submit(document(traces=1), priority=0)
        high = service.submit(document(traces=1), priority=9)
        mid = service.submit(document(traces=1), priority=4)
        order = []
        while True:
            entry = service.queue.get(timeout=0)
            if entry is None:
                break
            order.append(entry.batch.id)
        assert order == [high.id, mid.id, low.id]


class TestWarmPool:
    def test_repeat_submission_has_zero_compile_misses(self):
        service = make_service()
        try:
            first = service.submit(document(traces=2))
            assert first.wait(timeout=30)
            space = service._space("default")
            misses_before = space.cache.stats.misses
            second = service.submit(document(traces=2))
            assert second.wait(timeout=30)
            assert space.cache.stats.misses == misses_before
            assert [r.status for r in second.results] == ["ok", "ok"]
        finally:
            service.shutdown()

    def test_changed_design_drops_only_its_stale_build(self):
        service = make_service()
        try:
            batch = service.submit(document())
            assert batch.wait(timeout=30)
            state = service._space("default").state
            assert "d" in state._builds
            warm = state._builds["d"]
            # same source: the warm build survives adoption
            service.submit(document()).wait(timeout=30)
            assert state._builds["d"] is warm
            # different source under the same label: build dropped
            changed = service.submit(
                document(source=ONCE, module="once"))
            assert changed.wait(timeout=30)
            assert state._builds["d"] is not warm
            # the rebuilt design really is `once` now (terminates on
            # go; "ok" when the random trace never presents go)
            assert all(r.status in ("ok", "terminated")
                       for r in changed.results)
            assert all(r.module == "once" for r in changed.results)
        finally:
            service.shutdown()


class TestSweepFusion:
    """Cross-batch vector sweep fusion: queued sweepable jobs from
    separate batches of one tenant dispatch as one fused sweep."""

    def _direct_rows(self, doc):
        from repro.farm import WorkerState
        from repro.farm.spec import expand_document, load_designs

        designs = load_designs(doc["designs"], None, "<test>")
        jobs = expand_document(doc, designs)
        state = WorkerState(designs)
        return [r.to_dict(volatile=False)
                for r in (state.run_job(j) for j in jobs)]

    def test_cross_batch_jobs_fuse_into_one_dispatch(self):
        doc = document(engines=("vector",), traces=2)
        service = make_service(workers=1, start=False)
        try:
            batches = [service.submit(doc) for _ in range(3)]
            # six sweepable entries queued before any worker runs
            service.pool.start()
            for batch in batches:
                assert batch.wait(timeout=30)
            # one fused dispatch executed all six jobs (settle first:
            # the executed counter bumps a beat after the last row)
            assert service.pool.wait_idle(timeout=30)
            assert service.pool.jobs_executed == 1
            truth = self._direct_rows(doc)
            for batch in batches:
                rows = sorted(batch.results, key=lambda r: r.index)
                assert all(r.engine == "vector" and r.ok for r in rows)
                # per-job identity and stable payloads survive fusion
                assert [r.to_dict(volatile=False) for r in rows] == truth
        finally:
            service.shutdown()

    def test_fusion_limit_one_disables_fusion(self):
        doc = document(engines=("vector",), traces=2)
        service = make_service(workers=1, start=False, fusion_limit=1)
        try:
            batches = [service.submit(doc) for _ in range(2)]
            service.pool.start()
            for batch in batches:
                assert batch.wait(timeout=30)
            assert service.pool.wait_idle(timeout=30)
            assert service.pool.jobs_executed == 4  # one per job
            truth = self._direct_rows(doc)
            for batch in batches:
                rows = sorted(batch.results, key=lambda r: r.index)
                assert [r.to_dict(volatile=False) for r in rows] == truth
        finally:
            service.shutdown()

    def test_fusion_window_is_bounded(self):
        doc = document(engines=("vector",), traces=1)
        service = make_service(workers=1, start=False, fusion_limit=2)
        try:
            batches = [service.submit(doc) for _ in range(5)]
            service.pool.start()
            for batch in batches:
                assert batch.wait(timeout=30)
            # five jobs, fused at most two at a time: >= 3 dispatches
            assert service.pool.wait_idle(timeout=30)
            assert service.pool.jobs_executed >= 3
        finally:
            service.shutdown()

    def test_non_sweepable_jobs_never_fuse(self):
        doc = document(traces=2)  # efsm: no sweep key
        service = make_service(workers=1, start=False)
        try:
            batches = [service.submit(doc) for _ in range(2)]
            service.pool.start()
            for batch in batches:
                assert batch.wait(timeout=30)
            assert service.pool.wait_idle(timeout=30)
            assert service.pool.jobs_executed == 4
        finally:
            service.shutdown()


class TestWorkerDeath:
    def test_crashed_worker_retries_job_to_success(self):
        service = make_service(workers=1, max_attempts=3)
        crashes = {"left": 2}

        def fault(entry):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise MemoryError("injected")

        service.pool.fault_hook = fault
        try:
            batch = service.submit(document(traces=1))
            assert batch.wait(timeout=30)
            assert [r.status for r in batch.results] == ["ok"]
            assert service.pool.worker_deaths == 2
        finally:
            service.shutdown()

    def test_exhausted_retries_become_error_result_not_hang(self):
        service = make_service(workers=1, max_attempts=2)
        service.pool.fault_hook = lambda entry: (_ for _ in ()).throw(
            MemoryError("always"))
        try:
            batch = service.submit(document(traces=1))
            assert batch.wait(timeout=30)
            (row,) = batch.results
            assert row.status == "error"
            assert "worker died (2 attempt(s))" in row.error
            # the synthesized row still identifies its job
            assert row.job_id == batch.jobs[0].job_id
        finally:
            service.shutdown()

    def test_quarantine_is_structured_and_counted(self):
        service = make_service(workers=1, max_attempts=2)
        service.pool.fault_hook = lambda entry: (_ for _ in ()).throw(
            MemoryError("poison"))
        try:
            batch = service.submit(document(traces=1))
            assert batch.wait(timeout=30)
            (row,) = batch.results
            assert row.error.startswith("quarantined: ")
            assert service.quarantined == 1
            assert service.health_dict()["quarantined"] == 1
        finally:
            service.shutdown()

    def test_crash_after_record_does_not_duplicate_result(self):
        """The post-execute crash window: the result landed (and was
        journaled), then the worker died.  The retry must dedupe, not
        re-run — one row per job, always."""
        service = make_service(workers=1)
        crashes = {"left": 1}

        def post_fault(entry):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise MemoryError("crash after record")

        service.pool.post_fault_hook = post_fault
        try:
            batch = service.submit(document(traces=2))
            assert batch.wait(timeout=30)
            assert service.pool.worker_deaths == 1
            assert len(batch.results) == 2
            assert len({r.job_id for r in batch.results}) == 2
            assert all(r.status == "ok" for r in batch.results)
        finally:
            service.shutdown()


class TestDeadlines:
    def test_deadline_exceeded_in_queue_refuses_execution(self):
        # start=False: jobs age in the queue past their deadline, then
        # the late-started pool refuses instead of running stale work.
        service = make_service(workers=1, start=False)
        doc = document(traces=2)
        doc["jobs"][0]["deadline_s"] = 0.05
        batch = service.submit(doc)
        time.sleep(0.15)
        service.pool.start()
        try:
            assert batch.wait(timeout=30)
            assert all(r.status == "error" for r in batch.results)
            assert all(r.error.startswith("deadline_exceeded")
                       for r in batch.results)
            assert service.deadline_misses == 2
        finally:
            service.shutdown()

    def test_batch_ttl_expires_unexecuted_jobs(self):
        service = make_service(workers=1, start=False)
        doc = document(traces=2)
        doc["ttl_s"] = 0.05
        batch = service.submit(doc)
        time.sleep(0.15)
        service.pool.start()
        try:
            assert batch.wait(timeout=30)
            assert all(r.error.startswith("expired")
                       for r in batch.results)
            assert service.expired_jobs == 2
        finally:
            service.shutdown()

    def test_deadline_does_not_change_job_identity(self):
        from repro.farm.spec import expand_document, load_designs
        doc = document(traces=1)
        designs = load_designs(doc["designs"], None, "<test>")
        (plain,) = expand_document(doc, designs)
        doc["jobs"][0]["deadline_s"] = 5.0
        (bounded,) = expand_document(doc, designs)
        assert bounded.deadline_s == 5.0
        # policy, not identity: same trace either way
        assert bounded.job_id == plain.job_id

    def test_bad_ttl_rejected(self):
        service = make_service(workers=0)
        for ttl in (0, -1, "soon", True):
            doc = document()
            doc["ttl_s"] = ttl
            with pytest.raises(EclError, match="ttl_s"):
                service.submit(doc)

    def test_fast_jobs_beat_generous_deadlines(self):
        service = make_service()
        doc = document(traces=2)
        doc["jobs"][0]["deadline_s"] = 60.0
        try:
            batch = service.submit(doc)
            assert batch.wait(timeout=30)
            assert all(r.status == "ok" for r in batch.results)
            assert service.deadline_misses == 0
        finally:
            service.shutdown()


class TestJournalRecovery:
    def test_clean_run_journals_admit_rows_end(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            batch = service.submit(document(traces=2))
            assert batch.wait(timeout=30)
        finally:
            service.shutdown()
        shard = tmp_path / "journal" / "default.jsonl"
        kinds = [json.loads(line)["kind"]
                 for line in shard.read_text().splitlines() if line]
        assert kinds == ["admit", "row", "row", "end"]

    def test_crash_recovery_resumes_only_unfinished_jobs(self, tmp_path):
        doc = document(traces=4)
        service = make_service(data_root=str(tmp_path))
        try:
            batch = service.submit(doc)
            assert batch.wait(timeout=30)
            stable = sorted(
                json.dumps(r.to_dict(volatile=False), sort_keys=True)
                for r in batch.results)
        finally:
            service.shutdown()
        # simulate a kill -9 after two rows: truncate the WAL to
        # admit + 2 rows and add a torn tail.
        shard = tmp_path / "journal" / "default.jsonl"
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:3]) + '\n{"kind": "row", "ba')
        with pytest.warns(UserWarning, match="torn"):
            revived = make_service(data_root=str(tmp_path))
        try:
            assert revived.recovery["recovered_batches"] == 1
            assert revived.recovery["replayed_rows"] == 2
            assert revived.recovery["resumed_jobs"] == 2
            assert revived.recovery["torn_lines"] == 1
            batch_id = json.loads(lines[0])["batch"]
            recovered = revived.batch(batch_id)
            assert recovered.recovered
            assert recovered.wait(timeout=30)
            # zero lost, zero duplicated, byte-identical stable rows
            assert sorted(
                json.dumps(r.to_dict(volatile=False), sort_keys=True)
                for r in recovered.results) == stable
        finally:
            revived.shutdown()

    def test_recovered_complete_batch_is_closed_not_rerun(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            batch = service.submit(document(traces=2))
            assert batch.wait(timeout=30)
        finally:
            service.shutdown()
        # drop only the end line: the batch finished, the close was
        # lost to the crash.
        shard = tmp_path / "journal" / "default.jsonl"
        lines = shard.read_text().splitlines()
        assert json.loads(lines[-1])["kind"] == "end"
        shard.write_text("\n".join(lines[:-1]) + "\n")
        revived = make_service(data_root=str(tmp_path), workers=0)
        try:
            assert revived.recovery["recovered_batches"] == 1
            assert revived.recovery["resumed_jobs"] == 0
            recovered = revived.batch(json.loads(lines[0])["batch"])
            assert recovered.done  # complete purely from replay
        finally:
            revived.shutdown(drain=False, timeout=5)
        # the close was re-journaled: a third start recovers nothing
        third = make_service(data_root=str(tmp_path), workers=0)
        assert third.recovery["recovered_batches"] == 0
        third.shutdown(drain=False, timeout=5)

    def test_no_recover_flag_skips_replay(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            service.submit(document(traces=1)).wait(timeout=30)
        finally:
            service.shutdown()
        shard = tmp_path / "journal" / "default.jsonl"
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:1]) + "\n")  # admit only
        cold = make_service(data_root=str(tmp_path), workers=0,
                            recover=False)
        assert cold.recovery is None
        assert len(cold.queue) == 0
        cold.shutdown(drain=False, timeout=5)

    def test_journal_failure_degrades_durability_not_results(self,
                                                             tmp_path):
        service = make_service(data_root=str(tmp_path))

        def fail(kind, key):
            raise OSError("disk full")

        service.journal.fault_hook = fail
        try:
            # Journal faults are counted, never warned/printed (the
            # signal lives in journal_errors and the telemetry counter).
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                batch = service.submit(document(traces=2))
                assert batch.wait(timeout=30)
            assert all(r.status == "ok" for r in batch.results)
            assert service.journal_errors >= 1
        finally:
            service.journal.fault_hook = None
            service.shutdown()

    def test_rejected_batch_is_closed_in_journal(self, tmp_path):
        service = make_service(data_root=str(tmp_path), workers=0,
                               queue_depth=1)
        with pytest.raises(QueueFullError):
            service.submit(document(traces=3))
        shard = tmp_path / "journal" / "default.jsonl"
        kinds = [(json.loads(line)["kind"],
                  json.loads(line).get("reason"))
                 for line in shard.read_text().splitlines() if line]
        assert kinds == [("admit", None), ("end", "rejected")]
        # nothing to resurrect on restart
        revived = make_service(data_root=str(tmp_path), workers=0)
        assert revived.recovery["recovered_batches"] == 0
        revived.shutdown(drain=False, timeout=5)


class TestHealth:
    def test_health_dict_shape_and_counters(self):
        service = make_service(workers=0)
        health = service.health_dict()
        assert health["ok"] is True
        assert health["accepting"] is True
        assert health["queued"] == 0
        assert health["queue_depth"] == service.queue.depth
        assert health["quarantined"] == 0
        assert health["journal"] is False
        assert health["recovery"] is None
        service.submit(document(traces=2))
        assert service.health_dict()["queued"] == 2
        service.shutdown(drain=False, timeout=5)
        assert service.health_dict()["ok"] is False


class TestTenancy:
    def test_tenants_get_isolated_ledger_shards(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            alice = service.submit(document(traces=1), tenant="alice")
            bob = service.submit(document(source=ONCE, module="once",
                                          traces=1), tenant="bob")
            assert alice.wait(timeout=30) and bob.wait(timeout=30)
            alice_rows = service.ledger_entries("alice")
            bob_rows = service.ledger_entries("bob")
            assert len(alice_rows) == 1 and len(bob_rows) == 1
            assert alice_rows[0]["module"] == "echo"
            assert bob_rows[0]["module"] == "once"
        finally:
            service.shutdown()

    def test_trace_fetch_denied_across_tenants(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            batch = service.submit(document(traces=1), tenant="alice")
            assert batch.wait(timeout=30)
            digest = batch.results[0].trace_digest
            header, records = service.fetch_trace("alice", digest)
            assert header["module"] == "echo"
            assert len(records) == header["instants"]
            # same digest, other tenant: not servable, even though the
            # content-addressed object exists on disk.
            with pytest.raises(EclError, match="no trace"):
                service.fetch_trace("bob", digest)
        finally:
            service.shutdown()

    def test_tenant_caches_are_namespaced_on_disk(self, tmp_path):
        service = make_service(data_root=str(tmp_path))
        try:
            service.submit(document(traces=1), tenant="alice") \
                .wait(timeout=30)
            service.submit(document(traces=1), tenant="bob") \
                .wait(timeout=30)
            ns = tmp_path / "artifacts" / "ns"
            assert (ns / "alice").is_dir()
            assert (ns / "bob").is_dir()
        finally:
            service.shutdown()

    def test_bad_tenant_name_rejected(self):
        service = make_service(workers=0)
        for name in ("", "../escape", "a/b", ".hidden", "x" * 80):
            with pytest.raises(EclError, match="tenant"):
                service.submit(document(), tenant=name)


class TestShutdown:
    def test_graceful_drain_finishes_queued_work(self):
        service = make_service(workers=1)
        batch = service.submit(document(traces=4))
        assert service.shutdown(drain=True, timeout=60)
        assert batch.done
        assert all(r.status == "ok" for r in batch.results)
        with pytest.raises(EclError, match="shutting down"):
            service.submit(document())

    def test_non_drain_shutdown_cancels_queued_jobs(self):
        # workers=0: every job is still queued at shutdown time.
        service = make_service(workers=0, queue_depth=16)
        batch = service.submit(document(traces=3))
        service.shutdown(drain=False, timeout=5)
        assert batch.done
        assert all(r.status == "error" for r in batch.results)
        assert all("cancelled" in r.error for r in batch.results)

    def test_status_dict_shape(self):
        service = make_service(workers=0)
        status = service.status_dict()
        assert status["accepting"] is True
        assert status["queue"]["depth"] == service.queue.depth
        assert status["pool"]["workers"] == service.pool.workers
        assert status["batches"] == []
        assert status["tenants"] == []
