"""Unit tests for the C/ECL pretty-printer."""


from repro.lang import (
    ArrayType,
    CHAR,
    INT,
    PointerType,
    StructType,
    UCHAR,
    UnionType,
    parse_text,
    to_text,
    type_text,
)
from repro.lang.printer import type_definition_text


def print_expr(text):
    program, _ = parse_text("int f() { return (%s); }" % text)
    return to_text(program.functions()[0].body.body[0].value)


def reparse_same(text):
    assert print_expr(print_expr(text) if False else text) == \
        print_expr(text)


class TestTypeText:
    def test_scalar(self):
        assert type_text(INT) == "int"
        assert type_text(UCHAR, "x") == "unsigned char x"

    def test_array(self):
        assert type_text(ArrayType(CHAR, 4), "buf") == "char buf[4]"

    def test_nested_array(self):
        matrix = ArrayType(ArrayType(INT, 3), 2)
        assert type_text(matrix, "m") == "int m[2][3]"

    def test_pointer(self):
        assert type_text(PointerType(INT), "p") == "int *p"

    def test_struct_reference(self):
        struct = StructType.build("pair", [("a", INT)])
        assert type_text(struct, "v") == "struct pair v"

    def test_typedef_alias_preferred(self):
        union = UnionType.build("<anon1>", [("a", INT)])
        object.__setattr__(union, "typedef_alias", "packet_t")
        assert type_text(union, "p") == "packet_t p"

    def test_definition_text(self):
        struct = StructType.build("pair", [("a", INT), ("b", CHAR)])
        text = type_definition_text(struct, "pair_t")
        assert text.startswith("typedef struct pair {")
        assert "int a;" in text
        assert text.endswith("} pair_t;")


class TestExpressionPrinting:
    def test_precedence_parentheses_inserted(self):
        # (a + b) * c must keep its parentheses.
        assert print_expr("(a + b) * c") == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        assert print_expr("a + b * c") == "a + b * c"

    def test_shift_of_xor_kept(self):
        # Figure 2's expression shape.
        assert print_expr("(crc ^ b) << 1") == "(crc ^ b) << 1"

    def test_nested_ternary(self):
        assert print_expr("a ? b : c ? d : e") == "a ? b : c ? d : e"

    def test_unary_spacing(self):
        assert print_expr("-x + ~y") == "-x + ~y"

    def test_assignment_chain(self):
        assert print_expr("a = b = 1") == "a = b = 1"

    def test_member_and_index(self):
        assert print_expr("p.raw.data[i + 1]") == "p.raw.data[i + 1]"

    def test_cast(self):
        assert print_expr("(unsigned short) x") == "(unsigned short) x"

    def test_call_args(self):
        assert print_expr("f(a, b + 1)") == "f(a, b + 1)"

    def test_string_literal_escaped(self):
        program, _ = parse_text(
            'int f() { return g("a\\"b\\n"); }',
            run_preprocessor=False)
        text = to_text(program.functions()[0].body.body[0].value)
        assert text == 'g("a\\"b\\n")'


class TestStatementPrinting:
    def roundtrip(self, body):
        src = ("module m (input pure s, input int v, output pure t,"
               " output int w) { %s }" % body)
        program, _ = parse_text(src)
        printed = to_text(program)
        again, _ = parse_text(printed)
        assert to_text(again) == printed
        return printed

    def test_reactive_statements_roundtrip(self):
        printed = self.roundtrip(
            "await(s); emit(t); emit_v(w, v + 1); halt();")
        assert "await(s);" in printed
        assert "emit_v(w, v + 1);" in printed

    def test_abort_handle_roundtrip(self):
        printed = self.roundtrip(
            "do { halt(); } abort(s) handle { emit(t); }")
        assert "handle" in printed

    def test_weak_abort_roundtrip(self):
        printed = self.roundtrip("do { halt(); } weak_abort(s);")
        assert "weak_abort (s);" in printed

    def test_suspend_roundtrip(self):
        printed = self.roundtrip("do { halt(); } suspend(s);")
        assert "suspend (s);" in printed

    def test_par_roundtrip(self):
        printed = self.roundtrip("par { emit(t); halt(); }")
        assert "par {" in printed

    def test_signal_expr_roundtrip(self):
        printed = self.roundtrip("await(s & ~(s | s));")
        assert "await(s & ~(s | s));" in printed

    def test_for_with_empty_slots(self):
        printed = self.roundtrip("for (;;) { await(s); }")
        assert "for (; ; )" in printed

    def test_do_while_roundtrip(self):
        printed = self.roundtrip(
            "int i; i = 0; do { i++; } while (i < 3);")
        assert "while (i < 3);" in printed
