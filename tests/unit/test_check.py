"""Unit tests for the static semantic checker."""

import pytest

from repro.core import CompileOptions, EclCompiler
from repro.ecl.check import check_module, errors_of, warnings_of
from repro.errors import CompileError
from repro.lang import parse_text


def diagnostics_for(body, signals="input pure s, input int v, "
                    "output pure t, output int w", extra=""):
    src = "%smodule m (%s) { %s }" % (extra, signals, body)
    program, types = parse_text(src)
    return check_module(program, types, "m")


def error_messages(body, **kw):
    return [d.message for d in errors_of(diagnostics_for(body, **kw))]


class TestNameResolution:
    def test_undeclared_identifier(self):
        assert any("undeclared identifier 'x'" in m
                   for m in error_messages("emit_v(w, x);"))

    def test_declared_variable_ok(self):
        assert not error_messages("int x; x = 1; emit_v(w, x);"
                                  " await(s); emit(t);")

    def test_scoped_variable_not_visible_outside(self):
        messages = error_messages(
            "{ int x; x = 1; } emit_v(w, x); await(s); emit(t);")
        assert any("undeclared identifier 'x'" in m for m in messages)

    def test_signal_value_read_ok(self):
        assert not error_messages("emit_v(w, v + 1); await(s); emit(t);")

    def test_pure_signal_value_read_rejected(self):
        messages = error_messages("emit_v(w, s);")
        assert any("pure signal 's' carries no value" in m
                   for m in messages)

    def test_assignment_to_signal_rejected(self):
        messages = error_messages("v = 3;")
        assert any("cannot assign to signal 'v'" in m for m in messages)

    def test_assignment_to_undeclared(self):
        messages = error_messages("y = 3;")
        assert any("assignment to undeclared identifier 'y'" in m
                   for m in messages)


class TestCallChecks:
    def test_unknown_function(self):
        messages = error_messages("emit_v(w, f(1));")
        assert any("unknown function 'f'" in m for m in messages)

    def test_arity_mismatch(self):
        messages = error_messages(
            "emit_v(w, f(1, 2));",
            extra="int f(int a) { return a; }\n")
        assert any("expects 1 arguments, got 2" in m for m in messages)

    def test_correct_call_ok(self):
        assert not error_messages(
            "await(s); emit_v(w, f(v)); emit(t);",
            extra="int f(int a) { return a * 2; }\n")

    def test_module_in_expression_rejected(self):
        messages = error_messages(
            "emit_v(w, sub(s, t));",
            extra="module sub (input pure a, output pure b)"
                  " { halt(); }\n")
        assert any("instantiated inside an expression" in m
                   for m in messages)


class TestControlFlowChecks:
    def test_break_outside_loop(self):
        assert any("break outside" in m for m in error_messages("break;"))

    def test_continue_outside_loop(self):
        assert any("continue outside" in m
                   for m in error_messages("continue;"))

    def test_break_inside_loop_ok(self):
        assert not error_messages(
            "while (1) { await(s); break; } emit(t); emit_v(w, v);")

    def test_break_across_par_rejected(self):
        messages = error_messages(
            "while (1) { await(s); par { break; emit(t); } "
            "emit_v(w, v); }")
        assert any("break outside" in m for m in messages)

    def test_return_value_rejected(self):
        assert any("cannot return a value" in m
                   for m in error_messages("return 1;"))


class TestSignalChecks:
    def test_emit_undeclared(self):
        assert any("undeclared signal 'zz'" in m
                   for m in error_messages("emit(zz);"))

    def test_emit_input(self):
        assert any("cannot emit input signal 's'" in m
                   for m in error_messages("emit(s);"))

    def test_emit_v_on_pure(self):
        assert any("emit_v on pure signal 't'" in m
                   for m in error_messages("emit_v(t, 1);"))

    def test_bare_emit_on_valued(self):
        assert any("needs emit_v" in m for m in error_messages("emit(w);"))

    def test_await_undeclared(self):
        assert any("undeclared signal 'q'" in m
                   for m in error_messages("await(q);"))

    def test_local_signal_shadowing_rejected(self):
        assert any("shadows" in m
                   for m in error_messages("signal pure s;"))


class TestWarnings:
    def test_unused_signal_warning(self):
        warnings = warnings_of(diagnostics_for(
            "await(s); emit(t); emit_v(w, 1);"))
        assert any("'v' is never used" in d.message for d in warnings)

    def test_unread_variable_warning(self):
        warnings = warnings_of(diagnostics_for(
            "int x; x = 1; await(s); emit(t); emit_v(w, v);"))
        assert any("'x' is never read" in d.message for d in warnings)

    def test_clean_module_no_warnings(self):
        diagnostics = diagnostics_for(
            "int x; x = v; await(s); emit(t); emit_v(w, x);")
        assert not warnings_of(diagnostics)


class TestCompilerIntegration:
    def test_errors_block_compilation(self):
        design = EclCompiler().compile_text(
            "module m (input pure s, output pure t) { emit(zz); }")
        with pytest.raises(CompileError) as failure:
            design.module("m")
        assert "zz" in str(failure.value)

    def test_warnings_exposed(self):
        design = EclCompiler().compile_text(
            "module m (input pure s, input pure unused, output pure t)"
            " { while (1) { await(s); emit(t); } }")
        module = design.module("m")
        assert any("unused" in w.message for w in module.warnings)

    def test_strict_mode_promotes_warnings(self):
        design = EclCompiler(CompileOptions(strict=True)).compile_text(
            "module m (input pure s, input pure unused, output pure t)"
            " { while (1) { await(s); emit(t); } }")
        with pytest.raises(CompileError):
            design.module("m")

    def test_check_can_be_disabled(self):
        design = EclCompiler(CompileOptions(check=False)).compile_text(
            "module m (input pure s, input pure unused, output pure t)"
            " { while (1) { await(s); emit(t); } }")
        assert design.module("m").diagnostics == []

    def test_paper_designs_are_clean(self):
        from repro.designs import AUDIO_BUFFER_ECL, PROTOCOL_STACK_ECL
        for source in (PROTOCOL_STACK_ECL, AUDIO_BUFFER_ECL):
            design = EclCompiler().compile_text(source)
            for name in design.module_names:
                module = design.module(name)  # raises on errors
                assert not errors_of(module.diagnostics)
