"""Unit tests for the cost model and Table-1 reporting."""

import pytest

from repro.core import EclCompiler
from repro.cost import (
    CostModel,
    CycleCounter,
    PAPER_TABLE1,
    PartitionRow,
    Table1,
    format_table1,
    shape_checks,
)
from repro.rtos.kernel import KernelStats


SIMPLE = """
module m (input pure s, output pure t)
{
    while (1) { await (s); emit (t); }
}
"""

WITH_DATA = """
module m (input int v, output int w)
{
    int i;
    int acc;
    while (1) {
        await (v);
        for (i = 0, acc = 0; i < 16; i++) { acc = acc + v; }
        emit_v (w, acc);
    }
}
"""


def efsm_of(src):
    return EclCompiler().compile_text(src).module("m").efsm()


class TestCycleCounter:
    def test_counts_accumulate(self):
        counter = CycleCounter()
        counter.count("alu", 3)
        counter.count("mem")
        assert counter.counts["alu"] == 3
        assert counter.counts["mem"] == 1

    def test_merge(self):
        a, b = CycleCounter(), CycleCounter()
        a.count("alu", 2)
        b.count("alu", 3)
        a.merge(b)
        assert a.counts["alu"] == 5

    def test_reset(self):
        counter = CycleCounter()
        counter.count("branch", 7)
        counter.reset()
        assert counter.counts["branch"] == 0


class TestStaticEstimates:
    def test_code_size_positive(self):
        model = CostModel()
        assert model.efsm_code_bytes(efsm_of(SIMPLE)) > 0

    def test_data_functions_add_code(self):
        model = CostModel()
        assert model.efsm_code_bytes(efsm_of(WITH_DATA)) > \
            model.efsm_code_bytes(efsm_of(SIMPLE))

    def test_code_size_multiple_of_insn_bytes(self):
        model = CostModel()
        assert model.efsm_code_bytes(efsm_of(SIMPLE)) % model.insn_bytes == 0

    def test_data_size_counts_values(self):
        model = CostModel()
        simple = model.module_data_bytes(efsm_of(SIMPLE).module)
        with_data = model.module_data_bytes(efsm_of(WITH_DATA).module)
        assert with_data > simple  # two ints + valued signals

    def test_rtos_footprint_grows_with_tasks(self):
        model = CostModel()
        assert model.rtos_code_bytes(3) > model.rtos_code_bytes(1)
        assert model.rtos_data_bytes(3) > model.rtos_data_bytes(1)

    def test_shared_subtrees_counted_once(self):
        # Optimized machine (hash-consed) must not cost more than the
        # raw one.
        module = EclCompiler().compile_text(SIMPLE).module("m")
        model = CostModel()
        assert model.efsm_code_bytes(module.efsm(optimized=True)) <= \
            model.efsm_code_bytes(module.efsm(optimized=False))


class TestDynamicEstimates:
    def test_task_cycles_from_counter(self):
        model = CostModel()
        counter = CycleCounter()
        counter.count("alu", 10)
        counter.count("mem", 5)
        expected = 10 * model.cycles_alu + 5 * model.cycles_mem
        assert model.task_cycles(counter) == expected

    def test_rtos_cycles_from_stats(self):
        model = CostModel()
        stats = KernelStats(dispatches=4, context_switches=2,
                            scheduler_invocations=10, posts=6,
                            self_triggers=1)
        assert model.rtos_cycles(stats) == (
            2 * model.cycles_context_switch
            + 10 * model.cycles_scheduler
            + 6 * model.cycles_post
            + 1 * model.cycles_self_trigger
            + 4 * model.cycles_dispatch)


class TestReporting:
    def make_row(self, example="Stack", partition="1 task", **kw):
        defaults = dict(task_code=1000, task_data=100, rtos_code=5000,
                        rtos_data=1500, task_kcycles=10.0,
                        rtos_kcycles=20.0)
        defaults.update(kw)
        return PartitionRow(example=example, partition=partition,
                            **defaults)

    def test_totals(self):
        row = self.make_row()
        assert row.total_code == 6000
        assert row.total_kcycles == 30.0

    def test_table_lookup(self):
        table = Table1()
        table.add(self.make_row())
        assert table.row("Stack", "1 task").task_code == 1000
        with pytest.raises(KeyError):
            table.row("Stack", "9 tasks")

    def test_format_contains_paper_rows(self):
        table = Table1()
        table.add(self.make_row())
        text = format_table1(table)
        assert "paper" in text
        assert "1008" in text  # the paper's Stack 1-task code size

    def test_paper_constants_complete(self):
        assert set(PAPER_TABLE1) == {
            ("Stack", "1 task"), ("Stack", "3 tasks"),
            ("Buffer", "1 task"), ("Buffer", "3 tasks")}

    def test_shape_checks_pass_on_paper_numbers(self):
        """The claims must hold on the paper's own table."""
        table = Table1()
        for (example, partition), numbers in PAPER_TABLE1.items():
            table.add(PartitionRow(example=example, partition=partition,
                                   **numbers))
        checks = shape_checks(table)
        assert checks and all(checks.values())

    def test_shape_checks_detect_violation(self):
        table = Table1()
        table.add(self.make_row("Buffer", "1 task", task_code=100))
        table.add(self.make_row("Buffer", "3 tasks", task_code=900,
                                rtos_code=5200, rtos_data=1700,
                                rtos_kcycles=25.0))
        checks = shape_checks(table)
        assert not checks["Buffer: single-task (product) code larger "
                          "than 3 tasks"]
