"""Unit tests for kernel-term constructors and static analyses."""


from repro.esterel import kernel as k
from repro.lang import ast


def sig(name):
    return ast.SigRef(name=name)


class TestConstructors:
    def test_seq_flattens(self):
        built = k.seq(k.Emit("a"), k.seq(k.Emit("b"), k.Emit("c")))
        assert isinstance(built, k.Seq)
        assert len(built.stmts) == 3

    def test_seq_drops_nothing(self):
        built = k.seq(k.NOTHING, k.Emit("a"), k.NOTHING)
        assert built == k.Emit("a")

    def test_seq_empty_is_nothing(self):
        assert k.seq() is k.NOTHING

    def test_par_single_collapses(self):
        assert k.par(k.Emit("a")) == k.Emit("a")

    def test_par_keeps_order(self):
        built = k.par(k.Emit("a"), k.Emit("b"))
        assert [b.signal for b in built.branches] == ["a", "b"]

    def test_terms_hashable_and_equal_by_value(self):
        a = k.seq(k.Emit("x"), k.Pause())
        b = k.seq(k.Emit("x"), k.Pause())
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestMayPause:
    def test_pause_and_friends(self):
        assert k.may_pause(k.Pause())
        assert k.may_pause(k.Halt())
        assert k.may_pause(k.Await(sig("s")))

    def test_instantaneous_atoms(self):
        assert not k.may_pause(k.NOTHING)
        assert not k.may_pause(k.Emit("a"))
        assert not k.may_pause(k.Exit(0))

    def test_branching(self):
        stmt = k.Present(sig("s"), k.Pause(), k.NOTHING)
        assert k.may_pause(stmt)
        stmt = k.Present(sig("s"), k.Emit("a"), k.Emit("b"))
        assert not k.may_pause(stmt)

    def test_nested(self):
        stmt = k.Trap(k.par(k.Emit("a"), k.seq(k.Emit("b"), k.Pause())))
        assert k.may_pause(stmt)


class TestMustTerminateInstantly:
    def test_straight_line(self):
        assert k.must_terminate_instantly(k.seq(k.Emit("a"), k.Emit("b")))

    def test_pause_breaks_it(self):
        assert not k.must_terminate_instantly(
            k.seq(k.Emit("a"), k.Pause()))

    def test_exit_breaks_it(self):
        # An exit is not instantaneous termination of the loop body —
        # it escapes the loop instead, which is fine.
        assert not k.must_terminate_instantly(k.Exit(0))

    def test_both_branches_needed(self):
        stmt = k.Present(sig("s"), k.Emit("a"), k.Pause())
        assert not k.must_terminate_instantly(stmt)
        stmt = k.Present(sig("s"), k.Emit("a"), k.Emit("b"))
        assert k.must_terminate_instantly(stmt)


class TestSignalAnalyses:
    def test_emitted_signals(self):
        stmt = k.seq(k.Emit("a"), k.Present(sig("x"), k.Emit("b"),
                                            k.NOTHING))
        assert k.emitted_signals(stmt) == {"a", "b"}

    def test_tested_signals(self):
        stmt = k.seq(
            k.Await(ast.SigAnd(left=sig("p"), right=sig("q"))),
            k.Abort(k.Halt(), sig("r")),
        )
        assert k.tested_signals(stmt) == {"p", "q", "r"}

    def test_signals_used_combines(self):
        stmt = k.Present(sig("in1"), k.Emit("out1"), k.NOTHING)
        assert k.signals_used(stmt) == {"in1", "out1"}


class TestScheduleBranches:
    def test_emitter_moves_before_tester(self):
        tester = k.Present(sig("mid"), k.Emit("seen"), k.NOTHING)
        emitter = k.Emit("mid")
        ordered = k.schedule_branches([tester, emitter])
        assert ordered[0] is emitter

    def test_stable_when_independent(self):
        a, b, c = k.Emit("a"), k.Emit("b"), k.Emit("c")
        assert k.schedule_branches([a, b, c]) == (a, b, c)

    def test_chain_ordering(self):
        first = k.Emit("x")
        second = k.Present(sig("x"), k.Emit("y"), k.NOTHING)
        third = k.Present(sig("y"), k.Emit("z"), k.NOTHING)
        ordered = k.schedule_branches([third, second, first])
        assert ordered == (first, second, third)

    def test_cycle_keeps_source_order(self):
        a = k.seq(k.Present(sig("q"), k.Emit("p"), k.NOTHING))
        b = k.seq(k.Present(sig("p"), k.Emit("q"), k.NOTHING))
        ordered = k.schedule_branches([a, b])
        assert ordered == (a, b)

    def test_self_dependency_ignored(self):
        selfish = k.seq(k.Emit("p"), k.Present(sig("p"), k.Emit("r"),
                                               k.NOTHING))
        assert k.schedule_branches([selfish]) == (selfish,)
