"""Unit tests for the EFSM optimization passes."""


from repro.ecl import translate_module
from repro.efsm import (
    build_efsm,
    Efsm,
    Leaf,
    State,
    TestSignal,
    merge_equivalent_states,
    optimize,
    prune_unreachable,
    reachable_states,
    simplify_reactions,
)
from repro.lang import parse_text


def compiled(body, signals="input pure s, input pure r, output pure t"):
    src = "module m (%s) { %s }" % (signals, body)
    program, types = parse_text(src)
    return build_efsm(translate_module(program, types, "m"))


def hand_machine():
    """A machine with an unreachable state and two equivalent states."""
    loop_a = State(0, TestSignal("s", Leaf(1), Leaf(0)))
    loop_b = State(1, TestSignal("s", Leaf(0), Leaf(1)))
    orphan = State(2, Leaf(2))
    return Efsm(name="hand", states=[loop_a, loop_b, orphan], initial=0,
                inputs=("s",))


class TestReachability:
    def test_reachable_set(self):
        machine = hand_machine()
        assert reachable_states(machine) == {0, 1}

    def test_prune_drops_orphan(self):
        machine = prune_unreachable(hand_machine())
        assert machine.state_count == 2

    def test_prune_renumbers_consistently(self):
        pruned = prune_unreachable(hand_machine())
        for state in pruned.states:
            for node in [state.reaction]:
                pass
        assert pruned.initial == 0

    def test_noop_when_all_reachable(self):
        machine = compiled("while (1) { await(s); emit(t); }")
        assert prune_unreachable(machine) is machine


class TestSimplification:
    def test_identical_branches_collapse(self):
        # present(r) with the same outcome either way: the test of r
        # must disappear.
        machine = compiled(
            "while (1) { await(s); present (r) emit(t); else emit(t); }")
        simplified = simplify_reactions(machine)
        assert "r" not in simplified.tested_inputs()

    def test_shared_subtrees_interned(self):
        machine = simplify_reactions(
            compiled("while (1) { await(s | r); emit(t); }"))
        # Both input branches lead to the same continuation object.
        seen = {}
        for state in machine.states:
            node = state.reaction
            if isinstance(node, TestSignal):
                seen[state.index] = node
        # at least one state has a signal test with shared structure
        assert seen

    def test_semantics_preserved(self):
        from repro.analysis import compare_on_trace
        from repro.ecl import translate_module as tm
        src = ("module m (input pure s, input pure r, output pure t) {"
               " while (1) { await(s & ~r); emit(t); } }")
        program, types = parse_text(src)
        kernel = tm(program, types, "m")
        machine = optimize(build_efsm(kernel))
        trace = [{}, {"s": None}, {"s": None, "r": None}, {"s": None}, {}]
        assert compare_on_trace(kernel, machine, trace) is None


class TestMerging:
    def test_equivalent_states_merged(self):
        machine = merge_equivalent_states(
            prune_unreachable(hand_machine()))
        assert machine.state_count == 1

    def test_initial_state_tracked(self):
        machine = merge_equivalent_states(prune_unreachable(hand_machine()))
        assert machine.initial == 0

    def test_distinct_states_kept(self):
        machine = compiled(
            "while (1) { await(s); emit(t); await(r); }")
        merged = merge_equivalent_states(machine)
        assert merged.state_count >= 2


class TestFullPipeline:
    def test_never_grows(self):
        raw = compiled(
            "while (1) { await(s); present (r) emit(t); else emit(t); }")
        optimized = optimize(raw)
        assert optimized.state_count <= raw.state_count
        assert optimized.transition_count() <= raw.transition_count()

    def test_product_machine_shrinks(self):
        from repro.designs import PROTOCOL_STACK_ECL
        program, types = parse_text(PROTOCOL_STACK_ECL)
        raw = build_efsm(translate_module(program, types, "toplevel"))
        optimized = optimize(raw)
        assert optimized.transition_count() < raw.transition_count()

    def test_optimized_equivalent_on_paper_design(self):
        from repro.analysis import compare_on_trace
        from repro.designs import PROTOCOL_STACK_ECL
        program, types = parse_text(PROTOCOL_STACK_ECL)
        kernel = translate_module(program, types, "toplevel")
        optimized = optimize(build_efsm(kernel))
        packet = bytes([(0x40 + j) & 0xFF for j in range(6)] + [0] * 58)
        trace = [{}] + [{"in_byte": b} for b in packet] + [{}] * 12
        assert compare_on_trace(kernel, optimized, trace) is None
