"""Unit coverage of the property combinators and compiled monitors.

Each combinator's edge cases run through a real compiled
:class:`~repro.verify.monitor.Monitor` — vacuous ``implies``,
``within(0)``, deadline boundaries, ``eventually`` at its exact limit,
overlapping sequence matches — plus the JSON property-spec surface.
"""

import pickle

import pytest

from repro.errors import EclError
from repro.verify import (
    Monitor,
    absent,
    always,
    compile_bundle,
    eventually,
    implies,
    never,
    parse_pred,
    parse_property,
    present,
    sequence,
    value,
    within,
)
from repro.verify.monitor import bundle_digest


def run_monitor(properties, trace):
    """Drive a compiled monitor over a list of (emitted, inputs,
    values) triples; returns the violation (index, instant) pairs."""
    monitor = Monitor(compile_bundle(properties))
    for emitted, inputs, values in trace:
        monitor.step(emitted, inputs, values)
    return [(v.property_index, v.instant) for v in monitor.violations]


def instants(*present_sets):
    """Trace shorthand: each argument is the set of present names."""
    return [(set(names), {}, {}) for names in present_sets]


class TestBasicProperties:
    def test_never_trips_once(self):
        trace = instants({"a"}, {"bad"}, {"bad"})
        assert run_monitor([never(present("bad"))], trace) == [(0, 1)]

    def test_always_trips_on_first_absence(self):
        trace = instants({"ok"}, {"ok"}, set())
        assert run_monitor([always(present("ok"))], trace) == [(0, 2)]

    def test_absent_and_operators(self):
        prop = never(present("a") & ~present("b"))
        assert run_monitor([prop], instants({"a", "b"}, {"b"})) == []
        assert run_monitor([prop], instants({"a"})) == [(0, 0)]
        prop_or = never(present("a") | present("b"))
        assert run_monitor([prop_or], instants(set(), {"b"})) == [(0, 1)]

    def test_string_shorthand_means_present(self):
        assert run_monitor([never("bad")], instants({"bad"})) == [(0, 0)]

    def test_bad_predicate_rejected(self):
        with pytest.raises(EclError):
            never(42)


class TestImplies:
    def test_vacuous_implies_holds(self):
        """`a implies b` with `a` never present: no violation."""
        trace = instants(set(), {"b"}, set())
        assert run_monitor([implies("a", "b")], trace) == []

    def test_implies_same_instant(self):
        assert run_monitor([implies("a", "b")],
                           instants({"a", "b"})) == []
        assert run_monitor([implies("a", "b")],
                           instants({"a"})) == [(0, 0)]

    def test_next_instant_does_not_discharge(self):
        trace = instants({"a"}, {"b"})
        assert run_monitor([implies("a", "b")], trace) == [(0, 0)]


class TestValuePredicates:
    def test_comparison_builders(self):
        prop = never(value("level") >= 10)
        trace = [({"level"}, {}, {"level": 9}),
                 ({"level"}, {}, {"level": 10})]
        assert run_monitor([prop], trace) == [(0, 1)]

    def test_absent_signal_never_satisfies_value(self):
        prop = always(value("level") < 10)
        # level absent: the predicate is false, always() trips.
        assert run_monitor([prop], instants(set())) == [(0, 0)]

    def test_input_values_are_visible(self):
        prop = never(value("x") == 7)
        trace = [(set(), {"x": 7}, {})]
        assert run_monitor([prop], trace) == [(0, 0)]

    def test_non_int_value_is_false(self):
        """Hex-string aggregate values never satisfy comparisons."""
        prop = never(value("pkt") == 0)
        trace = [({"pkt"}, {}, {"pkt": "0x00ff"})]
        assert run_monitor([prop], trace) == []

    def test_bad_operator_rejected(self):
        from repro.verify.props import Value
        with pytest.raises(EclError):
            Value("x", "<=>", 1)


class TestWithin:
    def test_within_zero_means_same_instant(self):
        prop = within("req", "ack", 0)
        assert run_monitor([prop], instants({"req", "ack"})) == []
        assert run_monitor([prop], instants({"req"}, {"ack"})) == [(0, 0)]

    def test_deadline_met_at_last_instant(self):
        prop = within("req", "ack", 2)
        assert run_monitor([prop],
                           instants({"req"}, set(), {"ack"})) == []

    def test_deadline_missed_one_after(self):
        prop = within("req", "ack", 2)
        trace = instants({"req"}, set(), set(), {"ack"})
        assert run_monitor([prop], trace) == [(0, 2)]

    def test_pending_at_trace_end_is_not_a_violation(self):
        prop = within("req", "ack", 5)
        assert run_monitor([prop], instants({"req"}, set())) == []

    def test_one_response_serves_overlapping_triggers(self):
        prop = within("req", "ack", 3)
        trace = instants({"req"}, {"req"}, {"ack"}, set(), set(), set())
        assert run_monitor([prop], trace) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(EclError):
            within("a", "b", -1)


class TestEventually:
    def test_met_exactly_at_limit(self):
        prop = eventually("go", 2)
        assert run_monitor([prop], instants(set(), set(), {"go"})) == []

    def test_violated_at_limit(self):
        prop = eventually("go", 2)
        trace = instants(set(), set(), set(), {"go"})
        assert run_monitor([prop], trace) == [(0, 2)]

    def test_short_trace_is_pending_not_violated(self):
        prop = eventually("go", 10)
        assert run_monitor([prop], instants(set(), set())) == []


class TestSequence:
    def test_match_completes_pattern(self):
        prop = never(sequence("a", "b", "c"))
        trace = instants({"a"}, set(), {"b"}, {"c"})
        assert run_monitor([prop], trace) == [(0, 3)]

    def test_elements_need_strictly_increasing_instants(self):
        prop = never(sequence("a", "b"))
        # a and b together: no completed a-then-b.
        assert run_monitor([prop], instants({"a", "b"})) == []
        assert run_monitor([prop], instants({"a", "b"}, {"b"})) == [(0, 1)]

    def test_overlapping_matches_all_fire(self):
        """Progress persists: every completion instant holds."""
        prop = always(~sequence("a", "b"))
        trace = instants({"a"}, {"b"}, set(), {"b"})
        # b at instant 1 and again at 3, both completing a..b.
        assert run_monitor([prop], trace) == [(0, 1)]
        monitor = Monitor(compile_bundle([never(sequence("a", "b"))]))
        hits = []
        for emitted, inputs, values in trace:
            if monitor.step(emitted, inputs, values):
                hits.append(monitor.instant - 1)
        # the property trips once, but a fresh monitor confirms the
        # second overlap too
        monitor.reset()
        for emitted, inputs, values in instants({"a"}, set(), {"b"}):
            monitor.step(emitted, inputs, values)
        assert hits == [1]
        assert [(v.property_index, v.instant)
                for v in monitor.violations] == [(0, 2)]

    def test_single_step_sequence_is_the_predicate(self):
        prop = never(sequence("a"))
        assert run_monitor([prop], instants(set(), {"a"})) == [(0, 1)]

    def test_empty_sequence_rejected(self):
        with pytest.raises(EclError):
            sequence()

    def test_nested_sequence_rejected(self):
        with pytest.raises(EclError):
            sequence(sequence("a", "b"), "c")


class TestBundles:
    def test_multiple_properties_share_one_step(self):
        props = [never("x"), implies("a", "b"), within("r", "k", 1)]
        monitor = Monitor(compile_bundle(props))
        monitor.step({"x"}, {"a": None}, {})
        texts = [v.property_text for v in monitor.violations]
        assert len(texts) == 2  # never(x) and implies both trip
        assert monitor.first_violation.instant == 0

    def test_programs_pickle(self):
        program = compile_bundle([within("a", "b", 2), never("x")])
        clone = pickle.loads(pickle.dumps(program))
        assert clone.source == program.source
        assert clone.initial == program.initial
        monitor = Monitor(clone)
        monitor.step({"x"}, {}, {})
        assert not monitor.ok

    def test_bundle_digest_is_stable_and_content_addressed(self):
        a = (never("x"), within("a", "b", 2))
        b = (never("x"), within("a", "b", 2))
        c = (never("x"), within("a", "b", 3))
        assert bundle_digest(a) == bundle_digest(b)
        assert bundle_digest(a) != bundle_digest(c)

    def test_empty_bundle_rejected(self):
        with pytest.raises(EclError):
            compile_bundle([])

    def test_properties_are_picklable_dataclasses(self):
        props = (never(present("a") & absent("b")),
                 eventually(value("v") > 3, 9),
                 always(sequence("a", "b")))
        clone = pickle.loads(pickle.dumps(props))
        assert clone == props


class TestPropertySpecs:
    def test_parse_pred_forms(self):
        assert parse_pred("a") == present("a")
        assert parse_pred("!a") == absent("a")
        assert parse_pred({"all": ["a", "b"]}) == (present("a")
                                                  & present("b"))
        assert parse_pred({"any": ["a", "b"]}) == (present("a")
                                                   | present("b"))
        assert parse_pred({"not": "a"}) == ~present("a")
        assert parse_pred({"seq": ["a", "b"]}) == sequence("a", "b")
        assert parse_pred(
            {"value": "level", "op": ">=", "const": 3}
        ) == (value("level") >= 3)

    def test_parse_property_forms(self):
        assert parse_property(
            {"kind": "never", "pred": "bad"}) == never("bad")
        assert parse_property(
            {"kind": "always", "pred": "ok"}) == always("ok")
        assert parse_property(
            {"kind": "implies", "when": "a", "then": "b"}
        ) == implies("a", "b")
        assert parse_property(
            {"kind": "within", "trigger": "r", "expect": "k",
             "limit": 4}) == within("r", "k", 4)
        assert parse_property(
            {"kind": "eventually", "pred": "go", "limit": 7}
        ) == eventually("go", 7)

    def test_bad_specs_rejected(self):
        with pytest.raises(EclError):
            parse_property({"kind": "sometime", "pred": "x"})
        with pytest.raises(EclError):
            parse_pred({"bogus": 1})
        with pytest.raises(EclError):
            parse_pred(42)
