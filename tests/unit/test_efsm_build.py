"""Unit tests for symbolic EFSM construction."""

import pytest

from repro.ecl import translate_module
from repro.efsm import TERMINATED, build_efsm, Leaf, TestData, TestSignal, walk_reaction
from repro.errors import CausalityError, CompileError, NondeterminismError
from repro.lang import parse_text


def build(body, signals="input pure s, input pure r, output pure t",
          header="", **kw):
    src = "%smodule m (%s) { %s }" % (header, signals, body)
    program, types = parse_text(src)
    return build_efsm(translate_module(program, types, "m"), **kw)


class TestStructure:
    def test_single_await(self):
        efsm = build("await(s); emit(t);")
        # initial state pauses into the waiting state.
        assert efsm.state_count == 2
        assert "s" in efsm.tested_inputs()
        assert "t" in efsm.emitted_signals()

    def test_termination_leaf(self):
        efsm = build("await(s);")
        leaves = [n for state in efsm.states
                  for n in walk_reaction(state.reaction)
                  if isinstance(n, Leaf)]
        assert any(leaf.target == TERMINATED for leaf in leaves)

    def test_loop_reuses_state(self):
        efsm = build("while (1) { await(s); emit(t); }")
        assert efsm.state_count == 2

    def test_untested_input_not_in_tree(self):
        efsm = build("while (1) { await(s); emit(t); }")
        assert "r" not in efsm.tested_inputs()

    def test_data_guard_creates_testdata(self):
        efsm = build(
            "int x; while (1) { await(s); x++;"
            " if (x > 2) emit(t); }")
        nodes = [n for state in efsm.states
                 for n in walk_reaction(state.reaction)]
        assert any(isinstance(n, TestData) for n in nodes)

    def test_delta_flag_on_leaf(self):
        efsm = build("while (1) { await(s); await(); emit(t); }")
        leaves = [n for state in efsm.states
                  for n in walk_reaction(state.reaction)
                  if isinstance(n, Leaf) and n.delta]
        assert leaves

    def test_state_budget_enforced(self):
        body = "; ".join("await(s)" for _ in range(10)) + ";"
        with pytest.raises(CompileError):
            build(body, max_states=3)

    def test_paper_assemble_two_states(self):
        from repro.designs import PROTOCOL_STACK_ECL
        program, types = parse_text(PROTOCOL_STACK_ECL)
        efsm = build_efsm(translate_module(program, types, "assemble"))
        # Init state + the single byte-collecting wait state (the for
        # loop is folded through the constant store).
        assert efsm.state_count == 2


class TestConstantFolding:
    def test_loop_head_resolved_without_branch(self):
        # cnt = 0 then cnt < 4 must not produce a runtime test.
        efsm = build(
            "int cnt; while (1) {"
            " for (cnt = 0; cnt < 4; cnt++) { await(s); } emit(t); }")
        init_nodes = list(walk_reaction(efsm.state(0).reaction))
        assert not any(isinstance(n, TestData) for n in init_nodes)

    def test_unknown_on_resume_keeps_test(self):
        efsm = build(
            "int cnt; while (1) {"
            " for (cnt = 0; cnt < 4; cnt++) { await(s); } emit(t); }")
        wait_nodes = [n for state in efsm.states[1:]
                      for n in walk_reaction(state.reaction)]
        assert any(isinstance(n, TestData) for n in wait_nodes)

    def test_call_invalidates_constants(self):
        efsm = build(
            "int x; while (1) { await(s); x = 0; poke(&x);"
            " if (x > 0) emit(t); }",
            header="void poke(int *p) { *p = 5; }\n")
        nodes = [n for state in efsm.states
                 for n in walk_reaction(state.reaction)]
        assert any(isinstance(n, TestData) for n in nodes)


class TestLocalSignals:
    def test_local_compiled_away(self):
        efsm = build(
            "signal pure mid;"
            "while (1) { await(s);"
            " par { emit(mid); present (mid) emit(t); } }")
        for state in efsm.states:
            for node in walk_reaction(state.reaction):
                assert not (isinstance(node, TestSignal)
                            and node.signal == "mid")
        # The broadcast still works: t is emitted.
        assert "t" in efsm.emitted_signals()

    def test_causality_paradox_rejected(self):
        with pytest.raises((CausalityError, NondeterminismError)):
            build("signal pure p; while (1) { await(s);"
                  " present (~p) emit(p); }")

    def test_self_justification_resolved_absent(self):
        efsm = build("signal pure p;"
                     "while (1) { await(s);"
                     " present (p) { emit(p); emit(t); } }")
        assert "t" not in efsm.emitted_signals()


class TestEngineAgreement:
    """The builder and the interpreter agree on the paper's modules."""

    @pytest.mark.parametrize("name", ["assemble", "checkcrc", "prochdr",
                                      "toplevel"])
    def test_paper_modules(self, name):
        from repro.analysis import compare_on_trace
        from repro.designs import PROTOCOL_STACK_ECL
        program, types = parse_text(PROTOCOL_STACK_ECL)
        kernel = translate_module(program, types, name)
        efsm = build_efsm(kernel)
        trace = _stack_trace(name)
        assert compare_on_trace(kernel, efsm, trace) is None


def _stack_trace(name):
    packet = bytes(range(64))
    if name == "assemble":
        return [{}] + [{"in_byte": b} for b in packet] + [{}] * 4
    if name == "checkcrc":
        return [{}, {"inpkt": packet}, {}, {}, {"reset": None}, {}]
    if name == "prochdr":
        return ([{}, {"inpkt": packet}, {}, {"crc_ok": 1}]
                + [{}] * 8 + [{"reset": None}, {}])
    return [{}] + [{"in_byte": b} for b in packet] + [{}] * 12
