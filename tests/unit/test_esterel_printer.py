"""Unit tests for the Esterel source printer (phase-1 artifact)."""

import pytest

from repro.esterel import kernel as k, to_esterel
from repro.esterel.printer import EsterelPrinter
from repro.errors import CodegenError
from repro.lang import ast


def sig(name):
    return ast.SigRef(name=name)


class TestStatements:
    def test_atoms(self):
        assert to_esterel(k.NOTHING) == "nothing"
        assert to_esterel(k.Pause()) == "pause"
        assert to_esterel(k.Halt()) == "halt"

    def test_emit(self):
        assert to_esterel(k.Emit("s")) == "emit s"

    def test_emit_with_value(self):
        assert to_esterel(k.Emit("v", ast.IntLit(value=7))) == "emit v(7)"

    def test_await(self):
        assert to_esterel(k.Await(sig("s"))) == "await [s]"

    def test_await_boolean_expression(self):
        cond = ast.SigAnd(left=sig("a"),
                          right=ast.SigNot(operand=sig("b")))
        assert to_esterel(k.Await(cond)) == "await [a and not b]"

    def test_seq_with_semicolons(self):
        text = to_esterel(k.seq(k.Emit("a"), k.Emit("b")))
        assert text == "emit a;\nemit b"

    def test_loop(self):
        text = to_esterel(k.Loop(k.Pause()))
        assert text == "loop\n  pause\nend loop"

    def test_present_else(self):
        text = to_esterel(k.Present(sig("s"), k.Emit("a"), k.Emit("b")))
        assert "present [s] then" in text
        assert "else" in text
        assert text.endswith("end present")

    def test_par_brackets(self):
        text = to_esterel(k.par(k.Emit("a"), k.Emit("b")))
        assert text.startswith("[")
        assert "||" in text
        assert text.endswith("]")

    def test_abort(self):
        text = to_esterel(k.Abort(k.Halt(), sig("s")))
        assert text.startswith("abort")
        assert text.endswith("when [s]")

    def test_weak_abort(self):
        text = to_esterel(k.Abort(k.Halt(), sig("s"), weak=True))
        assert text.startswith("weak abort")

    def test_abort_with_handler(self):
        text = to_esterel(k.Abort(k.Halt(), sig("s"),
                                  handler=k.Emit("h")))
        assert "when case [s] do" in text
        assert "emit h" in text

    def test_suspend(self):
        text = to_esterel(k.Suspend(k.Halt(), sig("s")))
        assert text.startswith("suspend")
        assert text.endswith("when [s]")

    def test_trap_exit_labels_match(self):
        text = to_esterel(k.Trap(k.Exit(0)))
        assert "trap T0 in" in text
        assert "exit T0" in text

    def test_nested_trap_labels(self):
        text = to_esterel(k.Trap(k.Trap(k.Exit(1))))
        assert "trap T0 in" in text
        assert "trap T1 in" in text
        assert "exit T0" in text  # depth 1 from inside = outer trap

    def test_action_as_host_call_with_comment(self):
        program_stmt = ast.ExprStmt(expr=ast.Assign(
            op="=", target=ast.Name(id="x"), value=ast.IntLit(value=1)))
        text = to_esterel(k.Action(program_stmt))
        assert "call ecl_action()" in text
        assert "x = 1;" in text

    def test_residues_not_printable(self):
        with pytest.raises(CodegenError):
            to_esterel(k.AwaitActive(sig("s")))


class TestModuleText:
    def test_interface_declared(self):
        from repro.lang.types import INT, PURE
        params = (
            ast.SignalParam(direction="input", name="go", type=PURE),
            ast.SignalParam(direction="output", name="level", type=INT),
        )
        printer = EsterelPrinter()
        text = printer.module_text("m", params, k.Halt())
        assert text.startswith("module m:")
        assert "input go;" in text
        assert "output level : integer;" in text
        assert text.rstrip().endswith("end module")

    def test_local_signal_block(self):
        from repro.lang.types import PURE
        printer = EsterelPrinter()
        text = printer.module_text("m", (), k.Emit("mid"),
                                   local_signals=[("mid", PURE)])
        assert "signal mid in" in text
        assert "end signal" in text
