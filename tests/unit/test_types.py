"""Unit tests for the C type system layout rules."""

import pytest

from repro.errors import TypeError_
from repro.lang import (
    ArrayType,
    BOOL,
    CHAR,
    INT,
    PointerType,
    StructType,
    TypeTable,
    UCHAR,
    UINT,
    UnionType,
    common_type,
)
from repro.lang.types import SHORT


class TestIntTypes:
    def test_sizes(self):
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4

    def test_signed_ranges(self):
        assert CHAR.min_value == -128
        assert CHAR.max_value == 127
        assert UCHAR.min_value == 0
        assert UCHAR.max_value == 255

    def test_wrap_unsigned(self):
        assert UCHAR.wrap(256) == 0
        assert UCHAR.wrap(-1) == 255

    def test_wrap_signed_twos_complement(self):
        assert CHAR.wrap(128) == -128
        assert CHAR.wrap(255) == -1
        assert INT.wrap(2**31) == -(2**31)

    def test_bool_wrap(self):
        assert BOOL.wrap(17) == 1
        assert BOOL.wrap(0) == 0


class TestArrayLayout:
    def test_size(self):
        assert ArrayType(UCHAR, 64).size == 64
        assert ArrayType(INT, 3).size == 12

    def test_alignment_follows_element(self):
        assert ArrayType(INT, 2).align == 4
        assert ArrayType(CHAR, 5).align == 1

    def test_negative_length_rejected(self):
        with pytest.raises(TypeError_):
            ArrayType(INT, -1)

    def test_nested_arrays(self):
        matrix = ArrayType(ArrayType(INT, 4), 3)
        assert matrix.size == 48


class TestStructLayout:
    def test_padding_between_members(self):
        s = StructType.build("s", [("c", CHAR), ("i", INT)])
        assert s.field_named("c").offset == 0
        assert s.field_named("i").offset == 4
        assert s.size == 8

    def test_tail_padding(self):
        s = StructType.build("s", [("i", INT), ("c", CHAR)])
        assert s.size == 8  # padded to align 4

    def test_packed_chars(self):
        s = StructType.build("s", [("a", CHAR), ("b", CHAR)])
        assert s.size == 2

    def test_duplicate_field_rejected(self):
        with pytest.raises(TypeError_):
            StructType.build("s", [("a", INT), ("a", CHAR)])

    def test_unknown_field(self):
        s = StructType.build("s", [("a", INT)])
        with pytest.raises(TypeError_):
            s.field_named("nope")


class TestUnionLayout:
    def test_all_members_at_offset_zero(self):
        u = UnionType.build("u", [("a", INT), ("b", ArrayType(CHAR, 7))])
        assert all(f.offset == 0 for f in u.fields)

    def test_size_is_max_padded(self):
        u = UnionType.build("u", [("a", INT), ("b", ArrayType(CHAR, 7))])
        assert u.size == 8  # 7 rounded up to int alignment

    def test_paper_packet_union(self):
        # Figure 1: two views of a 64-byte packet.
        view1 = StructType.build("v1", [("packet", ArrayType(UCHAR, 64))])
        view2 = StructType.build("v2", [
            ("header", ArrayType(UCHAR, 6)),
            ("data", ArrayType(UCHAR, 56)),
            ("crc", ArrayType(UCHAR, 2)),
        ])
        packet = UnionType.build("packet_t", [("raw", view1), ("cooked", view2)])
        assert view1.size == view2.size == packet.size == 64
        assert view2.field_named("crc").offset == 62


class TestPointerTypes:
    def test_word_sized(self):
        assert PointerType(INT).size == 4

    def test_scalar(self):
        assert PointerType(CHAR).is_scalar()


class TestTypeTable:
    def test_builtin_lookup(self):
        table = TypeTable()
        assert table.lookup("int") is INT
        assert table.lookup("unsigned char") is UCHAR

    def test_typedef(self):
        table = TypeTable()
        table.define_typedef("byte", UCHAR)
        assert table.lookup("byte") is UCHAR
        assert table.is_type_name("byte")

    def test_typedef_redefinition_rejected(self):
        table = TypeTable()
        table.define_typedef("byte", UCHAR)
        with pytest.raises(TypeError_):
            table.define_typedef("byte", CHAR)

    def test_unknown_type(self):
        with pytest.raises(TypeError_):
            TypeTable().lookup("mystery_t")


class TestCommonType:
    def test_int_int(self):
        assert common_type(INT, INT) is INT

    def test_small_types_promote_to_int(self):
        assert common_type(CHAR, CHAR).size == 4

    def test_unsigned_wins_at_same_width(self):
        assert common_type(UINT, INT) is UINT

    def test_bool_promotes(self):
        assert common_type(BOOL, BOOL) is INT

    def test_non_scalar_rejected(self):
        s = StructType.build("s", [("a", INT)])
        with pytest.raises(TypeError_):
            common_type(s, INT)
