"""Unit coverage of counterexample minimization."""

from repro.verify import minimize_stimulus


def count_entries(trace):
    return sum(len(instant) for instant in trace)


class TestMinimizeStimulus:
    def test_truncates_after_violation(self):
        def check(trace):
            for number, instant in enumerate(trace):
                if "bad" in instant:
                    return number
            return None

        stimulus = [{"x": 1}, {"bad": None}, {"x": 2}, {"x": 3}]
        minimized, replays = minimize_stimulus(check, stimulus)
        assert minimized == [{"bad": None}]
        assert replays >= 1

    def test_drops_noise_instants_and_signals(self):
        def check(trace):
            """Violates when an 'a' instant is ever followed by 'b'."""
            armed = False
            for number, instant in enumerate(trace):
                if armed and "b" in instant:
                    return number
                if "a" in instant:
                    armed = True
            return None

        stimulus = [{"x": 9}, {"a": None, "x": 1}, {}, {"x": 2},
                    {"b": None, "y": 3}, {"x": 4}]
        minimized, _ = minimize_stimulus(check, stimulus)
        assert minimized == [{"a": None}, {"b": None}]

    def test_non_violating_input_is_returned_unchanged(self):
        stimulus = [{"x": 1}, {"y": 2}]
        minimized, replays = minimize_stimulus(lambda t: None, stimulus)
        assert minimized == stimulus
        assert replays == 1

    def test_result_still_violates_and_is_minimal(self):
        def check(trace):
            total = 0
            for number, instant in enumerate(trace):
                total += instant.get("v") or 0
                if total >= 10:
                    return number
            return None

        stimulus = [{"v": 3}, {"w": 1}, {"v": 4}, {"v": 1}, {"v": 4},
                    {"v": 2}]
        minimized, _ = minimize_stimulus(check, stimulus)
        assert check(minimized) is not None
        # no single instant can be dropped any more
        for index in range(len(minimized)):
            candidate = minimized[:index] + minimized[index + 1:]
            assert not candidate or check(candidate) is None

    def test_budget_bounds_replays(self):
        calls = []

        def check(trace):
            calls.append(1)
            return len(trace) - 1 if trace else None

        stimulus = [{"x": index} for index in range(64)]
        minimized, replays = minimize_stimulus(check, stimulus,
                                               max_replays=10)
        assert replays <= 10
        assert len(calls) <= 10
        assert check(minimized) is not None

    def test_input_list_is_not_mutated(self):
        stimulus = [{"a": None}, {"b": None}]
        original = [dict(instant) for instant in stimulus]
        minimize_stimulus(lambda t: 0 if t and "a" in t[0] else None,
                          stimulus)
        assert stimulus == original
