"""Unit tests for the small C preprocessor."""

import pytest

from repro.errors import PreprocessorError
from repro.lang import preprocess


class TestObjectMacros:
    def test_simple_define(self):
        out = preprocess("#define N 5\nint x = N;")
        assert "int x = 5;" in out

    def test_paper_pktsize_arithmetic(self):
        src = (
            "#define HDRSIZE 6\n"
            "#define DATASIZE 56\n"
            "#define CRCSIZE 2\n"
            "#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE\n"
            "x = PKTSIZE;"
        )
        out = preprocess(src)
        # The expansion is parenthesized so precedence survives.
        assert "x=(6+56+2);" in out.replace(" ", "")

    def test_macro_chain(self):
        out = preprocess("#define A 1\n#define B A\n#define C B\ny = C;")
        assert "1" in out

    def test_undef(self):
        out = preprocess("#define N 5\n#undef N\nx = N;")
        assert "x = N;" in out

    def test_no_expansion_in_strings(self):
        out = preprocess('#define N 5\ns = "N";')
        assert '"N"' in out

    def test_line_count_preserved(self):
        src = "#define N 5\n\nx = N;"
        out = preprocess(src)
        assert len(out.split("\n")) == len(src.split("\n"))


class TestFunctionMacros:
    def test_basic(self):
        out = preprocess("#define SQ(x) x*x\ny = SQ(3);")
        assert "3*3" in out.replace(" ", "")

    def test_two_params(self):
        out = preprocess("#define ADD(a, b) a+b\ny = ADD(1, 2);")
        assert "1+2" in out.replace(" ", "")

    def test_nested_call_argument(self):
        out = preprocess("#define ID(x) x\ny = ID(f(1, 2));")
        assert "f(1, 2)" in out

    def test_wrong_arity_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define ADD(a, b) a+b\ny = ADD(1);")

    def test_name_without_args_not_expanded(self):
        out = preprocess("#define F(x) x\ny = F;")
        assert "y = F;" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define A 1\n#ifdef A\nx = 1;\n#endif")
        assert "x = 1;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef A\nx = 1;\n#endif")
        assert "x = 1;" not in out

    def test_ifndef_else(self):
        out = preprocess("#ifndef A\nx = 1;\n#else\nx = 2;\n#endif")
        assert "x = 1;" in out
        assert "x = 2;" not in out

    def test_unterminated_conditional(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\nx;")

    def test_endif_without_if(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_defines_inside_inactive_block_ignored(self):
        out = preprocess("#ifdef A\n#define B 1\n#endif\nx = B;")
        assert "x = B;" in out


class TestIncludes:
    def test_include_file(self, tmp_path):
        header = tmp_path / "defs.h"
        header.write_text("#define N 7\n")
        src = '#include "defs.h"\nx = N;'
        out = preprocess(src, include_paths=[str(tmp_path)])
        assert "x = (7);" in out or "x = 7;" in out

    def test_missing_include(self):
        with pytest.raises(PreprocessorError):
            preprocess('#include "nope.h"')

    def test_malformed_include(self):
        with pytest.raises(PreprocessorError):
            preprocess("#include defs.h")


class TestPredefined:
    def test_predefined_macros(self):
        out = preprocess("x = N;", predefined={"N": 3})
        assert "x = 3;" in out

    def test_recursive_macro_detected(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define A B\n#define B A(\nx = A;")
