"""Unit tests for observer-based safety verification."""

import pytest

from repro.analysis import verify_with_observer
from repro.core import EclCompiler
from repro.errors import EclError

#: A traffic light with a mutual-exclusion property that holds.
GOOD = """
module light (input pure tick, output pure green, output pure red)
{
    while (1) {
        await (tick);
        emit (green);
        await (tick);
        emit (red);
    }
}

module exclusion (input pure green, input pure red, output pure error)
{
    while (1) {
        await (green & red);
        emit (error);
    }
}
"""

#: The same design with the bug the observer is written to catch.
BAD = GOOD.replace("emit (red);", "emit (red); emit (green);", 1)


class TestVerifyWithObserver:
    def test_property_holds(self):
        design = EclCompiler().compile_text(GOOD)
        assert verify_with_observer(design, "light", "exclusion") is None

    def test_violation_found_with_counterexample(self):
        design = EclCompiler().compile_text(BAD)
        counterexample = verify_with_observer(design, "light", "exclusion")
        assert counterexample is not None
        assert "error" in counterexample.describe()

    def test_missing_error_signal_rejected(self):
        src = GOOD.replace("output pure error", "output pure oops") \
                  .replace("emit (error)", "emit (oops)")
        design = EclCompiler().compile_text(src)
        with pytest.raises(EclError):
            verify_with_observer(design, "light", "exclusion")

    def test_observer_must_not_drive_design(self):
        meddling = GOOD.replace(
            "module exclusion (input pure green, input pure red, "
            "output pure error)",
            "module exclusion (input pure green, output pure red, "
            "output pure error)").replace("await (green & red)",
                                          "await (green)")
        design = EclCompiler().compile_text(meddling)
        with pytest.raises(EclError):
            verify_with_observer(design, "light", "exclusion")

    def test_observer_with_own_environment_input(self):
        src = """
module light (input pure tick, output pure green)
{
    while (1) { await (tick); emit (green); }
}

module armed_check (input pure arm, input pure green,
                    output pure error)
{
    while (1) {
        await (arm);
        do {
            await (green);
            emit (error);
        } abort (~arm);
    }
}
"""
        design = EclCompiler().compile_text(src)
        # green *is* emittable while armed: violation found.
        assert verify_with_observer(design, "light", "armed_check") \
            is not None

    DEADLINE_OBSERVER = """
module deadline (input pure req, input pure tick, input pure ack,
                 output pure error)
{
    while (1) {
        await (req);
        do {
            await (tick);
            await (tick);
            await (tick);
            emit (error);
        } abort (ack);
    }
}
"""

    def test_temporal_property_holds(self):
        """Bounded response: ack within three ticks of req."""
        src = """
module server (input pure req, input pure tick, output pure ack)
{
    while (1) {
        await (req);
        await (tick);
        emit (ack);
    }
}
""" + self.DEADLINE_OBSERVER
        design = EclCompiler().compile_text(src)
        # The server answers on the first tick after every request it
        # accepts; the observer tracks requests with the same
        # one-at-a-time discipline, so the deadline always aborts it.
        assert verify_with_observer(design, "server", "deadline") is None

    def test_temporal_property_violated_by_slow_server(self):
        src = """
module server (input pure req, input pure tick, output pure ack)
{
    while (1) {
        await (req);
        await (tick);
        await (tick);
        await (tick);
        await (tick);
        emit (ack);
    }
}
""" + self.DEADLINE_OBSERVER
        design = EclCompiler().compile_text(src)
        counterexample = verify_with_observer(design, "server", "deadline")
        assert counterexample is not None
        # The witness needs a request and at least three tick instants.
        assert counterexample.length >= 4


class TestObserverOnEngines:
    """The dynamic mode: the composed observer runs over a trace on a
    selectable engine — native included, so legacy observer checks run
    at compiled-reaction speed."""

    TRACE = [{}, {"tick": None}, {"tick": None}, {"tick": None},
             {"tick": None}]

    @pytest.mark.parametrize("engine", ["interp", "efsm", "native"])
    def test_good_design_stays_silent_on_every_engine(self, engine):
        design = EclCompiler().compile_text(GOOD)
        assert verify_with_observer(design, "light", "exclusion",
                                    engine=engine,
                                    trace=self.TRACE) is None

    @pytest.mark.parametrize("engine", ["interp", "efsm", "native"])
    def test_buggy_design_caught_with_located_witness(self, engine):
        design = EclCompiler().compile_text(BAD)
        witness = verify_with_observer(design, "light", "exclusion",
                                       engine=engine, trace=self.TRACE)
        assert witness is not None
        # green+red fire together on the second tick; the synchronous
        # composition raises error in the same instant
        assert witness.instant == 2
        assert witness.length == 3
        assert "<-- error" in witness.describe()

    def test_engines_agree_on_the_witness_instant(self):
        design = EclCompiler().compile_text(BAD)
        instants = [
            verify_with_observer(design, "light", "exclusion",
                                 engine=engine, trace=self.TRACE).instant
            for engine in ("interp", "efsm", "native")]
        assert len(set(instants)) == 1

    def test_engine_without_trace_rejected(self):
        design = EclCompiler().compile_text(GOOD)
        with pytest.raises(EclError):
            verify_with_observer(design, "light", "exclusion",
                                 engine="native")

    def test_unknown_engine_rejected(self):
        design = EclCompiler().compile_text(GOOD)
        with pytest.raises(EclError):
            verify_with_observer(design, "light", "exclusion",
                                 engine="warp", trace=self.TRACE)


class TestSingleWriterRule:
    def test_two_parallel_writers_rejected(self):
        from repro.errors import TranslationError
        src = """
module m (input pure s, output pure t)
{
    par {
        { await (s); emit (t); }
        { await (s); emit (t); }
    }
}
"""
        design = EclCompiler().compile_text(src)
        with pytest.raises(TranslationError):
            design.module("m")

    def test_sequential_writers_allowed(self):
        src = """
module m (input pure s, output pure t)
{
    while (1) { await (s); emit (t); emit (t); }
}
"""
        design = EclCompiler().compile_text(src)
        assert design.module("m").efsm().state_count >= 2
