"""Unit tests for the staged pipeline: stages, registry, cache, batch."""

import importlib.util
import threading

import pytest

from repro import designs
from repro.core import CompileOptions, EclCompiler
from repro.errors import CompileError
from repro.pipeline import (
    Artifact,
    ArtifactCache,
    ArtifactKey,
    Backend,
    BackendRegistry,
    DEFAULT_REGISTRY,
    Pipeline,
    digest_options,
    digest_text,
    stage_named,
)

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""

SCALE = """
module scale (input int x, output int y)
{
    while (1) { await (x); emit_v (y, x * 2); }
}
"""

TWO_MODULES = ECHO + SCALE


class TestArtifacts:
    def test_digest_text_stable(self):
        assert digest_text("abc") == digest_text("abc")
        assert digest_text("abc") != digest_text("abd")

    def test_digest_options_sees_fields(self):
        base = digest_options(CompileOptions())
        assert base == digest_options(CompileOptions())
        assert base != digest_options(CompileOptions(optimize=False))

    def test_key_identity(self):
        key = ArtifactKey("s", "o", "translate", "m")
        assert key == ArtifactKey("s", "o", "translate", "m")
        assert key.cache_id != ArtifactKey("s", "o", "efsm", "m").cache_id

    def test_stage_named(self):
        assert stage_named("translate").kind == "kernel"
        assert stage_named("emit:c").kind == "files"
        with pytest.raises(CompileError):
            stage_named("launder")


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = DEFAULT_REGISTRY.names()
        for expected in ("c", "py", "vhdl", "verilog", "esterel", "dot"):
            assert expected in names

    def test_unknown_backend_is_compile_error(self):
        with pytest.raises(CompileError):
            DEFAULT_REGISTRY.get("gcc")

    def test_custom_registration(self):
        registry = BackendRegistry()
        @registry.backend("upper", requires=("source",))
        def emit_upper(build):
            return {build.name + ".txt": build.source.upper()}
        assert "upper" in registry
        pipe = Pipeline(registry=registry)
        files = pipe.compile_text(ECHO).module("echo").emit("upper")
        assert "MODULE ECHO" in files["echo.txt"]

    def test_bad_requires_rejected(self):
        registry = BackendRegistry()
        with pytest.raises(CompileError):
            registry.register(Backend("x", lambda b: {},
                                      requires=("efsm", "llvm-ir")))

    def test_hardware_flag(self):
        assert DEFAULT_REGISTRY.get("vhdl").hardware
        assert not DEFAULT_REGISTRY.get("c").hardware

    def test_custom_registry_inherits_its_entry_points(self):
        registry = BackendRegistry(
            entry_points=("repro.codegen.c_backend",
                          "repro.codegen.dot_backend"))
        assert registry.names() == ["c", "dot"]
        with pytest.raises(CompileError):
            registry.get("vhdl")   # not among its entry points


class TestCache:
    def test_memory_roundtrip(self):
        cache = ArtifactCache.memory()
        key = ArtifactKey("s", "o", "translate", "m")
        assert cache.get(key) is None
        cache.put(key, {"k": 1}, kind="kernel")
        hit = cache.get(key)
        assert isinstance(hit, Artifact)
        assert hit.payload == {"k": 1} and hit.from_cache
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_persistent_survives_process_state(self, tmp_path):
        root = str(tmp_path / "cache")
        key = ArtifactKey("s", "o", "efsm", "m")
        ArtifactCache.persistent(root).put(key, [1, 2, 3])
        fresh = ArtifactCache.persistent(root)
        hit = fresh.get(key)
        assert hit is not None and hit.payload == [1, 2, 3]
        assert fresh.stats.disk_hits == 1

    def test_unpicklable_payload_degrades_gracefully(self, tmp_path):
        cache = ArtifactCache.persistent(str(tmp_path / "cache"))
        key = ArtifactKey("s", "o", "check", "m")
        cache.put(key, threading.Lock())   # not picklable
        assert cache.stats.store_errors == 1
        assert cache.get(key) is not None  # memory layer still serves it

    def test_clear(self, tmp_path):
        cache = ArtifactCache.persistent(str(tmp_path / "cache"))
        key = ArtifactKey("s", "o", "split", "m")
        cache.put(key, "payload")
        cache.clear()
        assert len(cache) == 0
        assert ArtifactCache.persistent(cache.root).get(key) is None


class TestModuleHandle:
    def test_stage_products(self):
        handle = Pipeline().compile_text(ECHO).module("echo")
        assert handle.kernel().name == "echo"
        assert handle.efsm().state_count >= 1
        assert handle.split_report().module_name == "echo"
        assert handle.check() == []

    def test_efsm_identity_and_optimize_variants(self):
        handle = Pipeline().compile_text(ECHO).module("echo")
        assert handle.efsm() is handle.efsm()
        assert handle.efsm(optimized=False) is handle.raw_efsm()

    def test_emit_matches_legacy_products(self):
        design = EclCompiler().compile_text(ECHO)
        module = design.module("echo")
        files = module.emit("c")
        bundle = module.c_code()
        assert files["echo.c"] == bundle.source
        assert files["echo.h"] == bundle.header
        assert module.emit("dot")["echo.dot"] == module.dot()
        glue = module.glue()
        assert module.emit("esterel")["echo.strl"] == glue.esterel_text

    def test_unknown_module_message(self):
        design = Pipeline().compile_text(ECHO)
        with pytest.raises(CompileError, match="no module named 'nope'"):
            design.module("nope").kernel()

    def test_reactor_engines(self):
        handle = Pipeline().compile_text(ECHO).module("echo")
        for engine in ("efsm", "interp"):
            out = handle.reactor(engine=engine).react(inputs=["ping"])
            out = handle.reactor(engine=engine).react(inputs=["ping"])
            assert out.emitted is not None
        with pytest.raises(CompileError):
            handle.reactor(engine="jit")

    def test_py_backend_emits_importable_module(self, tmp_path):
        files = Pipeline().compile_text(ECHO).module("echo").emit("py")
        path = tmp_path / "echo.py"
        path.write_text(files["echo.py"])
        spec = importlib.util.spec_from_file_location("echo_gen", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        reactor = module.reactor()
        reactor.react(inputs=["ping"])
        out = reactor.react(inputs=["ping"])
        assert "pong" in out.emitted


class TestCompileDesign:
    def test_batched_compile_of_paper_designs(self):
        pipe = Pipeline()
        for text, expected in (
                (designs.PROTOCOL_STACK_ECL,
                 {"assemble", "checkcrc", "prochdr", "toplevel"}),
                (designs.AUDIO_BUFFER_ECL,
                 {"sampler", "fifo_ctrl", "drain_ctrl", "audio_buffer"})):
            report = pipe.compile_design(text, emit=("c", "dot"), jobs=4)
            assert report.ok
            assert set(report.module_names) == expected
            for build in report.modules:
                assert build.emitted["c"]
                assert any(name.endswith(".dot") for name
                           in build.files)

    def test_hardware_backend_skips_data_modules(self):
        report = Pipeline().compile_design(
            designs.PROTOCOL_STACK_ECL, emit=("vhdl",))
        toplevel = report.module("toplevel")
        assert toplevel.ok and "vhdl" in toplevel.skipped

    def test_hardware_backend_emits_pure_module(self):
        report = Pipeline().compile_design(ECHO, emit=("vhdl", "verilog"))
        build = report.module("echo")
        assert build.emitted["vhdl"] == ("echo.vhd",)
        assert build.emitted["verilog"] == ("echo.v",)

    def test_module_failure_does_not_abort_batch(self):
        bad = ECHO + """
module broken (input pure go, output pure done)
{
    while (1) { await (go); emit (missing); }
}
"""
        report = Pipeline().compile_design(bad, emit=("c",))
        assert not report.ok
        assert report.module("echo").ok
        broken = report.module("broken")
        assert not broken.ok and "problem" in broken.error

    def test_write_files(self, tmp_path):
        report = Pipeline().compile_design(ECHO, emit=("c",))
        written = report.write_files(str(tmp_path))
        assert sorted(p.split("/")[-1] for p in written) == \
            ["echo.c", "echo.h"]
        assert (tmp_path / "echo.c").read_text() == \
            report.files()["echo.c"]

    def test_summary_mentions_modules(self):
        report = Pipeline().compile_design(TWO_MODULES, emit=("c",))
        text = report.summary()
        assert "echo" in text and "scale" in text

    def test_module_subset(self):
        report = Pipeline().compile_design(TWO_MODULES, emit=("c",),
                                           modules=["scale"])
        assert report.module_names == ["scale"]


class TestWarmCompile:
    def test_warm_recompile_is_all_cache_hits(self, tmp_path):
        root = str(tmp_path / "cache")
        cold = Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(TWO_MODULES, emit=("c", "dot"))
        assert cold.ok and cold.cache_hits == 0
        warm = Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(TWO_MODULES, emit=("c", "dot"))
        assert warm.ok
        for build in warm.modules:
            assert all(t.cache_hit for t in build.timings)
        assert warm.files() == cold.files()

    def test_warm_build_never_parses(self, tmp_path, monkeypatch):
        root = str(tmp_path / "cache")
        Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(ECHO, emit=("c",))

        def boom(*args, **kwargs):
            raise AssertionError("warm build hit the parser")
        import repro.pipeline.pipeline as pipeline_mod
        monkeypatch.setattr(pipeline_mod, "run_parse", boom)
        warm = Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(ECHO, emit=("c",))
        assert warm.ok and warm.module("echo").cache_hits > 0

    def test_option_change_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(ECHO, emit=("c",))
        other = Pipeline(CompileOptions(optimize=False),
                         cache=ArtifactCache.persistent(root)) \
            .compile_design(ECHO, emit=("c",))
        assert other.ok and other.cache_hits == 0

    def test_source_change_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(ECHO, emit=("c",))
        changed = Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(ECHO.replace("pong", "pung"), emit=("c",))
        assert changed.ok and changed.cache_hits == 0

    def test_included_file_change_invalidates(self, tmp_path):
        header = tmp_path / "gain.h"
        header.write_text("#define GAIN 2\n")
        source = '#include "gain.h"\n' + """
module amp (input int x, output int y)
{
    while (1) { await (x); emit_v (y, x * GAIN); }
}
"""
        root = str(tmp_path / "cache")
        paths = (str(tmp_path),)
        cold = Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(source, emit=("c",), include_paths=paths)
        assert cold.ok and "* 2" in cold.files()["amp.c"]
        header.write_text("#define GAIN 99\n")
        changed = Pipeline(cache=ArtifactCache.persistent(root)) \
            .compile_design(source, emit=("c",), include_paths=paths)
        assert changed.cache_hits == 0
        assert "* 99" in changed.files()["amp.c"]

    def test_predefined_macros_part_of_digest(self, tmp_path):
        source = """
module fixed (input pure go, output int level)
{
    while (1) { await (go); emit_v (level, LEVEL); }
}
"""
        root = str(tmp_path / "cache")
        # Warm runs touch only check + emit:c, both cache-served.
        for level, expect_hits in (("1", 0), ("2", 0), ("1", 2)):
            report = Pipeline(cache=ArtifactCache.persistent(root)) \
                .compile_design(source, emit=("c",),
                                predefined={"LEVEL": level})
            assert report.ok
            assert report.cache_hits == expect_hits

    def test_unresolvable_include_is_uncacheable_not_stale(self,
                                                          tmp_path):
        from repro.pipeline import digest_design_inputs
        source = '#include "missing.h"\nmodule m () {}'
        first = digest_design_inputs(source, include_paths=())
        second = digest_design_inputs(source, include_paths=())
        assert first.startswith("uncacheable:")
        assert first != second   # never shared, never stale

    def test_include_digest_matches_preprocessor_grammar(self, tmp_path):
        # Spellings the preprocessor accepts must all reach the digest:
        # no space after 'include', '#  include', trailing comments,
        # backslash-continued directive lines.
        header = tmp_path / "gain.h"
        header.write_text("#define GAIN 2\n")
        from repro.pipeline import digest_design_inputs
        spellings = [
            '#include"gain.h"\n',
            '#  include  "gain.h"\n',
            '#include "gain.h" /* tuning */\n',
            '#include "gain.h" // tuning\n',
            '#include \\\n"gain.h"\n',
        ]
        paths = (str(tmp_path),)
        before = [digest_design_inputs(s, include_paths=paths)
                  for s in spellings]
        header.write_text("#define GAIN 99\n")
        after = [digest_design_inputs(s, include_paths=paths)
                 for s in spellings]
        for spelling, old, new in zip(spellings, before, after):
            assert not old.startswith("uncacheable:"), spelling
            assert old != new, "edit invisible to digest: %r" % spelling

    def test_uncacheable_design_not_persisted_to_disk(self, tmp_path):
        root = tmp_path / "cache"
        cache = ArtifactCache.persistent(str(root))
        source = "#ifdef NEVER\n#include \"missing.h\"\n#endif\n" + ECHO
        report = Pipeline(cache=cache).compile_design(source, emit=("c",))
        assert report.ok   # the guarded include never fires
        assert report.source_digest.startswith("uncacheable:")
        persisted = [p for p in root.rglob("*.pkl")]
        assert persisted == []   # one-shot keys stay off disk

    def test_replaced_backend_invalidates_emit_artifacts(self, tmp_path):
        root = str(tmp_path / "cache")
        registry = BackendRegistry(
            entry_points=("repro.codegen.dot_backend",))
        warm_files = Pipeline(cache=ArtifactCache.persistent(root),
                              registry=registry) \
            .compile_design(ECHO, emit=("dot",)).files()
        assert warm_files["echo.dot"].startswith("digraph")

        replaced = BackendRegistry()
        @replaced.backend("dot", requires=("efsm",))
        def emit_custom(build):
            return {build.name + ".dot": "CUSTOM OUTPUT"}
        fresh = Pipeline(cache=ArtifactCache.persistent(root),
                         registry=replaced) \
            .compile_design(ECHO, emit=("dot",))
        assert fresh.files()["echo.dot"] == "CUSTOM OUTPUT"

    def test_option_mutation_after_construction_rekeys(self, tmp_path):
        pipe = Pipeline(cache=ArtifactCache.persistent(
            str(tmp_path / "cache")))
        first = pipe.compile_design(ECHO, emit=("c",))
        assert first.ok
        pipe.options.optimize = False
        second = pipe.compile_design(ECHO, emit=("c",))
        assert second.ok and second.cache_hits == 0

    def test_memory_layer_is_lru_bounded(self):
        cache = ArtifactCache.memory(max_memory_entries=2)
        keys = [ArtifactKey("s", "o", "check", "m%d" % i)
                for i in range(3)]
        for key in keys:
            cache.put(key, key.module)
        assert len(cache) == 2
        assert cache.get(keys[0]) is None     # evicted, LRU
        assert cache.get(keys[2]).payload == "m2"


class TestLegacyShim:
    def test_shim_shares_pipeline_cache(self):
        compiler = EclCompiler()
        first = compiler.compile_text(ECHO).module("echo").efsm()
        second = compiler.compile_text(ECHO).module("echo").efsm()
        assert first is second   # same source+options → same artifact

    def test_shim_strict_mode(self):
        unused = """
module quiet (input pure go, input pure unused, output pure done)
{
    while (1) { await (go); emit (done); }
}
"""
        design = EclCompiler(CompileOptions(strict=True)) \
            .compile_text(unused)
        with pytest.raises(CompileError):
            design.module("quiet")

    def test_options_and_pipeline_conflict_rejected(self):
        with pytest.raises(ValueError):
            EclCompiler(CompileOptions(optimize=False),
                        pipeline=Pipeline())

    def test_options_reassignment_writes_through(self):
        compiler = EclCompiler()
        compiler.options = CompileOptions(optimize=False)
        module = compiler.compile_text(ECHO).module("echo")
        assert module.efsm() is module.efsm(optimized=False)
        assert compiler.pipeline.options.optimize is False


class TestPartitionBundles:
    """DesignBuild.partition_bundle: the rtos engine's one-artifact bind."""

    TASKS = (
        ("assemble", "assemble", 3, (("outpkt", "packet"),)),
        ("prochdr", "prochdr", 2, (("inpkt", "packet"),)),
        ("checkcrc", "checkcrc", 1, (("inpkt", "packet"),)),
    )

    def test_bundle_contains_every_task(self):
        build = Pipeline().compile_text(designs.PROTOCOL_STACK_ECL,
                                        filename="stack.ecl")
        bundle = build.partition_bundle(self.TASKS)
        assert [task.name for task in bundle.tasks] == \
            ["assemble", "prochdr", "checkcrc"]
        for task in bundle.tasks:
            assert task.code is not None and task.efsm is not None
        assert bundle.tasks[0].bindings == (("outpkt", "packet"),)
        assert "assemble:assemble@3" in bundle.describe()

    def test_bundle_is_content_addressed(self):
        pipeline = Pipeline()
        build = pipeline.compile_text(designs.PROTOCOL_STACK_ECL,
                                      filename="stack.ecl")
        first = build.partition_bundle(self.TASKS)
        assert build.partition_bundle(self.TASKS) is first
        other = build.partition_bundle(self.TASKS[:2])
        assert other is not first

    def test_bundle_survives_persistent_cache(self, tmp_path):
        import pickle

        cache = ArtifactCache.persistent(str(tmp_path / "cache"))
        pipeline = Pipeline(cache=cache)
        build = pipeline.compile_text(designs.PROTOCOL_STACK_ECL,
                                      filename="stack.ecl")
        bundle = build.partition_bundle(self.TASKS)
        clone = pickle.loads(pickle.dumps(bundle))
        assert [t.module for t in clone.tasks] == \
            [t.module for t in bundle.tasks]
        # A second pipeline over the same cache serves the bundle from
        # disk without recompiling any stage.
        warm = Pipeline(cache=ArtifactCache.persistent(
            str(tmp_path / "cache")))
        warm_build = warm.compile_text(designs.PROTOCOL_STACK_ECL,
                                       filename="stack.ecl")
        warm_bundle = warm_build.partition_bundle(self.TASKS)
        assert warm.cache.stats.disk_hits >= 1
        assert [t.name for t in warm_bundle.tasks] == \
            [t.name for t in bundle.tasks]
