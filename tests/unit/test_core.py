"""Unit tests for the compiler driver, partition runner and CLI."""

import os

import pytest

from repro.cli import main as eclc_main
from repro.core import (
    CompileOptions,
    EclCompiler,
    PartitionSpec,
    TaskSpec,
    run_partition,
)
from repro.errors import CompileError

SRC = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""


class TestCompilerFacade:
    def test_compile_and_list(self):
        design = EclCompiler().compile_text(SRC)
        assert design.module_names == ["echo"]

    def test_unknown_module(self):
        design = EclCompiler().compile_text(SRC)
        with pytest.raises(CompileError):
            design.module("nope")

    def test_module_products_cached(self):
        design = EclCompiler().compile_text(SRC)
        module = design.module("echo")
        assert module.efsm() is module.efsm()
        assert design.module("echo") is module

    def test_optimization_toggle(self):
        design = EclCompiler(CompileOptions(optimize=False)) \
            .compile_text(SRC)
        module = design.module("echo")
        assert module.efsm() is module.efsm(optimized=False)

    def test_bad_engine_name(self):
        module = EclCompiler().compile_text(SRC).module("echo")
        with pytest.raises(CompileError):
            module.reactor(engine="jit")

    def test_compile_file(self, tmp_path):
        path = tmp_path / "echo.ecl"
        path.write_text(SRC)
        design = EclCompiler().compile_file(str(path))
        assert design.module_names == ["echo"]

    def test_split_report_accessible(self):
        design = EclCompiler().compile_text(SRC)
        report = design.module("echo").split_report()
        assert report.module_name == "echo"


class TestPartitionRunner:
    def test_run_partition_row(self):
        design = EclCompiler().compile_text(SRC)
        spec = PartitionSpec("1 task", [TaskSpec("echo", "echo")])

        def bench(kernel):
            pongs = 0
            for _ in range(5):
                kernel.post_input("ping")
                if "pong" in kernel.run_until_idle():
                    pongs += 1
            return pongs

        result = run_partition(design, spec, bench, "Echo")
        assert result.testbench_result == 5
        row = result.row
        assert row.example == "Echo"
        assert row.task_code > 0
        assert row.rtos_code > row.task_code
        assert row.task_kcycles > 0
        assert row.rtos_kcycles > 0
        assert result.efsm_sizes["echo"][0] >= 2


class TestCli:
    def write(self, tmp_path):
        path = tmp_path / "echo.ecl"
        path.write_text(SRC)
        return str(path)

    def test_info(self, tmp_path, capsys):
        assert eclc_main(["info", self.write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "module echo" in out

    def test_compile_c(self, tmp_path, capsys):
        src = self.write(tmp_path)
        outdir = str(tmp_path / "out")
        assert eclc_main(["compile", src, "-m", "echo", "--emit", "c",
                          "-o", outdir]) == 0
        assert os.path.exists(os.path.join(outdir, "echo.c"))
        assert os.path.exists(os.path.join(outdir, "echo.h"))

    def test_compile_all_skips_impossible(self, tmp_path, capsys):
        data_src = """
module m (input int x, output int y)
{
    int i; int a;
    while (1) { await (x); for (i = 0; i < 3; i++) a += x;
    emit_v (y, a); }
}
"""
        path = tmp_path / "m.ecl"
        path.write_text(data_src)
        outdir = str(tmp_path / "out")
        assert eclc_main(["compile", str(path), "-m", "m",
                          "--emit", "all", "-o", outdir]) == 0
        # C and Esterel written; RTL skipped (data part not empty).
        assert os.path.exists(os.path.join(outdir, "m.c"))
        assert os.path.exists(os.path.join(outdir, "m.strl"))
        assert not os.path.exists(os.path.join(outdir, "m.v"))

    def test_simulate(self, tmp_path, capsys):
        src = self.write(tmp_path)
        trace = tmp_path / "trace.txt"
        trace.write_text("# start-up\n\nping\n\nping\n")
        assert eclc_main(["simulate", src, "-m", "echo",
                          "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "pong" in out

    def test_dot(self, tmp_path, capsys):
        assert eclc_main(["dot", self.write(tmp_path), "-m", "echo"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.ecl"
        path.write_text("module m (input pure s) { emit(zz); }")
        assert eclc_main(["compile", str(path), "-m", "m"]) == 1
        assert "error" in capsys.readouterr().err
