"""Unit tests for EFSM introspection helpers (describe / dot edges)."""

import pytest

from repro.core import EclCompiler
from repro.efsm import count_leaves, to_dot, walk_reaction
from repro.efsm.machine import DoEmit, Leaf, TestSignal

SRC = """
module gate (input pure open_cmd, input pure close_cmd,
             output pure opened, output pure closed)
{
    while (1) {
        await (open_cmd);
        emit (opened);
        await (close_cmd);
        emit (closed);
    }
}
"""


@pytest.fixture(scope="module")
def efsm():
    return EclCompiler().compile_text(SRC).module("gate").efsm()


class TestDescribe:
    def test_header_counts(self, efsm):
        text = efsm.describe()
        assert text.startswith("efsm gate: %d states" % efsm.state_count)

    def test_every_state_listed(self, efsm):
        text = efsm.describe()
        for state in efsm.states:
            assert "state %d:" % state.index in text

    def test_initial_marked(self, efsm):
        assert "(initial)" in efsm.describe()

    def test_emissions_shown(self, efsm):
        text = efsm.describe()
        assert "emit opened" in text
        assert "emit closed" in text


class TestWalkAndCount:
    def test_walk_visits_all_kinds(self, efsm):
        kinds = set()
        for state in efsm.states:
            for node in walk_reaction(state.reaction):
                kinds.add(type(node))
        assert Leaf in kinds
        assert TestSignal in kinds
        assert DoEmit in kinds

    def test_count_leaves_matches_transition_count(self, efsm):
        assert efsm.transition_count() == sum(
            count_leaves(s.reaction) for s in efsm.states)

    def test_interface_queries(self, efsm):
        assert efsm.tested_inputs() <= {"open_cmd", "close_cmd"}
        assert efsm.emitted_signals() == {"opened", "closed"}


class TestDot:
    def test_every_state_is_a_dot_node(self, efsm):
        dot = to_dot(efsm)
        for state in efsm.states:
            assert "s%d [label" % state.index in dot

    def test_guards_and_emissions_on_edges(self, efsm):
        dot = to_dot(efsm)
        assert "open_cmd" in dot
        assert "/ opened" in dot

    def test_long_labels_truncated(self, efsm):
        dot = to_dot(efsm, max_label_length=10)
        for line in dot.splitlines():
            if 'label="' in line and "->" in line:
                label = line.split('label="')[1].rsplit('"', 1)[0]
                assert len(label) <= 13  # 10 + "..."
