"""Unit tests for the BatchJournal write-ahead log and its replay."""

import json
import os

import pytest

from repro.errors import EclError
from repro.farm.jobs import SimResult
from repro.serve import BatchJournal


@pytest.fixture
def journal(tmp_path):
    return BatchJournal(str(tmp_path / "journal"))


def result(job_id="j1", index=0, status="ok"):
    return SimResult(job_id=job_id, design="d", module="m",
                     engine="efsm", index=index, status=status,
                     instants=4, elapsed=1.23, worker_pid=4321)


class TestWriting:
    def test_admit_row_end_lifecycle(self, journal):
        journal.admit("t", "b1", {"jobs": []}, ["j1", "j2"],
                      priority=3, ttl_s=9.5)
        journal.row("t", "b1", result("j1"))
        journal.row("t", "b1", result("j2", index=1))
        journal.end("t", "b1")
        lines = [json.loads(line)
                 for line in open(journal.shard_path("t")) if line.strip()]
        assert [line["kind"] for line in lines] == \
            ["admit", "row", "row", "end"]
        assert lines[0]["priority"] == 3
        assert lines[0]["ttl_s"] == 9.5
        assert lines[0]["job_ids"] == ["j1", "j2"]
        assert lines[-1]["reason"] == "complete"

    def test_rows_use_stable_serialization(self, journal):
        journal.admit("t", "b1", {}, ["j1"])
        journal.row("t", "b1", result("j1"))
        (_, row_line) = [json.loads(line)
                         for line in open(journal.shard_path("t"))]
        # volatile fields (elapsed, worker_pid, trace_path) never land
        # in the WAL: a replayed row must equal a re-executed one.
        assert "elapsed" not in row_line["row"]
        assert "worker_pid" not in row_line["row"]
        assert row_line["row"]["job_id"] == "j1"
        assert row_line["row"]["instants"] == 4

    def test_shards_are_per_tenant(self, journal):
        journal.admit("alice", "a", {}, [])
        journal.admit("bob", "b", {}, [])
        assert journal.tenants() == ["alice", "bob"]
        assert os.path.exists(journal.shard_path("alice"))
        assert journal.replay("alice").batches.keys() == {"a"}
        assert journal.replay("bob").batches.keys() == {"b"}

    def test_bad_tenant_name_rejected(self, journal):
        with pytest.raises(EclError, match="tenant"):
            journal.admit("../escape", "b", {}, [])

    def test_fault_hook_failure_leaves_no_partial_line(self, journal):
        journal.admit("t", "b1", {}, ["j1"])

        def hook(kind, key):
            raise OSError("injected")

        journal.fault_hook = hook
        with pytest.raises(OSError):
            journal.row("t", "b1", result("j1"))
        journal.fault_hook = None
        replay = journal.replay("t")
        assert replay.batches["b1"].rows == {}
        assert replay.torn_lines == 0


class TestReplay:
    def test_open_batches_excludes_ended(self, journal):
        journal.admit("t", "done", {}, ["j1"])
        journal.row("t", "done", result("j1"))
        journal.end("t", "done")
        journal.admit("t", "open", {}, ["j2"])
        replay = journal.replay("t")
        assert [r.batch_id for r in replay.open_batches()] == ["open"]
        assert replay.batches["done"].ended
        assert replay.batches["done"].end_reason == "complete"

    def test_pending_job_ids_are_the_unjournaled_ones(self, journal):
        journal.admit("t", "b", {}, ["j1", "j2", "j3"])
        journal.row("t", "b", result("j2"))
        record = journal.replay("t").batches["b"]
        assert not record.complete
        assert record.pending_job_ids == ["j1", "j3"]
        journal.row("t", "b", result("j1"))
        journal.row("t", "b", result("j3"))
        assert journal.replay("t").batches["b"].complete

    def test_torn_tail_is_skipped_with_warning(self, journal):
        journal.admit("t", "b", {}, ["j1"])
        journal.row("t", "b", result("j1"))
        with open(journal.shard_path("t"), "a") as handle:
            handle.write('{"kind": "row", "batch": "b", "job_')
        with pytest.warns(UserWarning, match="torn"):
            replay = journal.replay("t")
        assert replay.torn_lines == 1
        # everything before the torn tail survived
        assert replay.batches["b"].rows.keys() == {"j1"}

    def test_duplicate_rows_dedupe_to_first(self, journal):
        journal.admit("t", "b", {}, ["j1"])
        journal.row("t", "b", result("j1", status="ok"))
        journal.row("t", "b", result("j1", status="error"))
        replay = journal.replay("t")
        assert replay.duplicate_rows == 1
        assert replay.batches["b"].rows["j1"]["status"] == "ok"

    def test_orphan_row_counted_not_fatal(self, journal):
        # a row whose admit append failed: nothing to attach it to
        journal.row("t", "ghost", result("j1"))
        journal.admit("t", "real", {}, ["j2"])
        replay = journal.replay("t")
        assert replay.orphan_rows == 1
        assert replay.batches.keys() == {"real"}

    def test_missing_shard_replays_empty(self, journal):
        replay = journal.replay("never-seen")
        assert replay.batches == {}
        assert replay.torn_lines == 0


class TestCompaction:
    def test_closed_batches_drop_open_ones_survive(self, journal):
        journal.admit("t", "done", {"jobs": ["x"]}, ["j1"])
        journal.row("t", "done", result("j1"))
        journal.end("t", "done")
        journal.admit("t", "open", {"jobs": ["y"]}, ["j2", "j3"],
                      priority=2, ttl_s=7.0)
        journal.row("t", "open", result("j2"))

        summary = journal.compact()
        assert summary["dropped_batches"] == 1
        assert summary["kept_batches"] == 1
        assert summary["rewritten_shards"] == 1

        replay = journal.replay("t")
        assert replay.batches.keys() == {"open"}
        record = replay.batches["open"]
        assert record.priority == 2
        assert record.ttl_s == 7.0
        assert record.spec == {"jobs": ["y"]}
        assert record.rows.keys() == {"j2"}
        assert record.pending_job_ids == ["j3"]

    def test_shard_with_nothing_open_is_removed(self, journal):
        journal.admit("t", "b", {}, ["j1"])
        journal.row("t", "b", result("j1"))
        journal.end("t", "b")
        summary = journal.compact()
        assert summary["removed_shards"] == 1
        assert not os.path.exists(journal.shard_path("t"))
        # and the journal still works after — appends reopen the shard
        journal.admit("t", "b2", {}, ["j9"])
        assert journal.replay("t").batches.keys() == {"b2"}

    def test_clean_all_open_shard_is_left_alone(self, journal):
        journal.admit("t", "open", {}, ["j1"])
        journal.row("t", "open", result("j1"))
        before = open(journal.shard_path("t")).read()
        summary = journal.compact()
        assert summary["rewritten_shards"] == 0
        assert summary["kept_lines"] == 2
        assert open(journal.shard_path("t")).read() == before

    def test_torn_tail_and_duplicates_compact_away(self, journal):
        journal.admit("t", "open", {}, ["j1"])
        journal.row("t", "open", result("j1", status="ok"))
        journal.row("t", "open", result("j1", status="error"))  # dup
        with open(journal.shard_path("t"), "a") as handle:
            handle.write('{"kind": "row", "ba')  # torn tail
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            journal.compact()
        # the rewritten shard replays clean: first row won, tail gone
        replay = journal.replay("t")
        assert replay.torn_lines == 0
        assert replay.duplicate_rows == 0
        assert replay.batches["open"].rows["j1"]["status"] == "ok"

    def test_rewrite_is_atomic_no_tmp_left_behind(self, journal, tmp_path):
        journal.admit("t", "done", {}, [])
        journal.end("t", "done")
        journal.admit("t", "open", {}, ["j1"])
        journal.compact()
        assert not os.path.exists(journal.shard_path("t") + ".tmp")
        # idempotent: a second pass finds a clean shard, rewrites nothing
        summary = journal.compact()
        assert summary["rewritten_shards"] == 0
        assert summary["dropped_batches"] == 0

    def test_single_tenant_compaction_scope(self, journal):
        journal.admit("alice", "a", {}, [])
        journal.end("alice", "a")
        journal.admit("bob", "b", {}, [])
        journal.end("bob", "b")
        summary = journal.compact(tenant="alice")
        assert summary["shards"] == 1
        assert not os.path.exists(journal.shard_path("alice"))
        assert os.path.exists(journal.shard_path("bob"))
