"""Unit tests for the packaged paper designs."""


from repro.core import EclCompiler
from repro.designs import (
    ASSEMBLE_ECL,
    AUDIO_BUFFER_ECL,
    CHECKCRC_ECL,
    CHECKCRC_FIGURE2_ECL,
    HEADER_ECL,
    PROCHDR_ECL,
    PROTOCOL_STACK_ECL,
    PROTOCOL_STACK_FIGURES_ECL,
    TOPLEVEL_ECL,
)
from repro.lang import parse_text


class TestSourceText:
    def test_header_defines_packet_layout(self):
        _program, types = parse_text(HEADER_ECL)
        packet = types.lookup("packet_t")
        assert packet.size == 64
        cooked = packet.field_named("cooked").type
        assert cooked.field_named("crc").offset == 62

    def test_each_listing_parses_alone(self):
        for listing in (ASSEMBLE_ECL, CHECKCRC_ECL, CHECKCRC_FIGURE2_ECL,
                        PROCHDR_ECL, TOPLEVEL_ECL):
            program, _ = parse_text(HEADER_ECL + listing)
            assert program.modules()

    def test_figure2_verbatim_keeps_int_cast(self):
        assert "(int) inpkt.cooked.crc" in CHECKCRC_FIGURE2_ECL
        assert "await ()" not in CHECKCRC_FIGURE2_ECL

    def test_executable_variant_is_well_typed(self):
        assert "(unsigned short) inpkt.cooked.crc" in CHECKCRC_ECL
        assert "await ()" in CHECKCRC_ECL

    def test_full_stack_contains_all_modules(self):
        program, _ = parse_text(PROTOCOL_STACK_ECL)
        assert [m.name for m in program.modules()] == [
            "assemble", "checkcrc", "prochdr", "toplevel"]

    def test_figures_bundle_matches_paper(self):
        program, _ = parse_text(PROTOCOL_STACK_FIGURES_ECL)
        assert [m.name for m in program.modules()] == [
            "assemble", "checkcrc", "prochdr", "toplevel"]


class TestDesignSizes:
    def test_stack_module_state_counts(self):
        design = EclCompiler().compile_text(PROTOCOL_STACK_ECL)
        counts = {name: design.module(name).efsm().state_count
                  for name in design.module_names}
        assert counts["assemble"] == 2
        assert counts["checkcrc"] == 3
        assert counts["prochdr"] >= 4
        # The synchronous product is bigger than any component but far
        # below the naive product bound.
        assert counts["toplevel"] > max(counts["assemble"],
                                        counts["checkcrc"])
        assert counts["toplevel"] < (counts["assemble"]
                                     * counts["checkcrc"]
                                     * counts["prochdr"] * 4)

    def test_audio_buffer_product_explosion(self):
        from repro.cost import CostModel
        design = EclCompiler().compile_text(AUDIO_BUFFER_ECL)
        model = CostModel()
        parts = sum(
            model.efsm_code_bytes(design.module(name).efsm())
            for name in ("sampler", "fifo_ctrl", "drain_ctrl"))
        product = model.efsm_code_bytes(
            design.module("audio_buffer").efsm())
        # The Table 1 Buffer shape: product code ≳ 2x the sum of parts.
        assert product > 2 * parts

    def test_audio_buffer_data_is_small(self):
        # Paper: Buffer task data is tiny (80 bytes for one task).
        from repro.cost import CostModel
        design = EclCompiler().compile_text(AUDIO_BUFFER_ECL)
        module = design.module("audio_buffer")
        assert CostModel().module_data_bytes(module.kernel) < 128
