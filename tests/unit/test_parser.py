"""Unit tests for the ECL parser."""

import pytest

from repro.errors import ParseError, ScopeError
from repro.lang import ast, parse_text, to_text
from repro.lang.types import PureType


def parse(src, **kw):
    program, _ = parse_text(src, **kw)
    return program


def parse_module_body(body):
    src = "module m (input pure s, output pure t) { %s }" % body
    return parse(src).module_named("m").body


def first_stmt(body):
    return parse_module_body(body).body[0]


class TestTopLevel:
    def test_module_with_signals(self):
        program = parse(
            "module m (input pure reset, input int x, output bool ok) {}")
        module = program.module_named("m")
        assert [s.direction for s in module.signals] == [
            "input", "input", "output"]
        assert isinstance(module.signals[0].type, PureType)
        assert str(module.signals[1].type) == "int"

    def test_function_definition(self):
        program = parse("int add(int a, int b) { return a + b; }")
        function = program.functions()[0]
        assert function.name == "add"
        assert len(function.params) == 2

    def test_typedef_then_use(self):
        program = parse("typedef unsigned char byte;\n"
                        "module m (input byte b, output pure o) {}")
        assert str(program.module_named("m").signals[0].type) == \
            "unsigned char"

    def test_struct_definition_and_use(self):
        program = parse(
            "typedef struct { int a; int b; } pair_t;\n"
            "module m (input pair_t p, output pure o) {}")
        sig_type = program.module_named("m").signals[0].type
        assert sig_type.field_named("b").offset == 4

    def test_global_variable_rejected(self):
        with pytest.raises(ScopeError):
            parse("int counter;")

    def test_static_rejected(self):
        with pytest.raises(ScopeError):
            parse("static int counter;")

    def test_missing_module_paren(self):
        with pytest.raises(ParseError):
            parse("module m { }")

    def test_unknown_module_lookup(self):
        with pytest.raises(KeyError):
            parse("module m (input pure a, output pure b) {}").module_named("x")


class TestReactiveStatements:
    def test_emit_pure(self):
        stmt = first_stmt("emit(t);")
        assert isinstance(stmt, ast.Emit)
        assert stmt.signal == "t"
        assert stmt.value is None

    def test_emit_v(self):
        stmt = first_stmt("emit_v(t, 1 + 2);")
        assert isinstance(stmt, ast.Emit)
        assert stmt.value is not None

    def test_await_signal(self):
        stmt = first_stmt("await(s);")
        assert isinstance(stmt, ast.Await)
        assert isinstance(stmt.cond, ast.SigRef)

    def test_await_empty_delta(self):
        stmt = first_stmt("await();")
        assert isinstance(stmt, ast.Await)
        assert stmt.cond is None

    def test_await_boolean_expression(self):
        stmt = first_stmt("await(s & ~t);")
        assert isinstance(stmt.cond, ast.SigAnd)
        assert isinstance(stmt.cond.right, ast.SigNot)

    def test_await_or(self):
        stmt = first_stmt("await(s | t);")
        assert isinstance(stmt.cond, ast.SigOr)

    def test_halt(self):
        assert isinstance(first_stmt("halt();"), ast.Halt)

    def test_present_else(self):
        stmt = first_stmt("present(s) { emit(t); } else { halt(); }")
        assert isinstance(stmt, ast.Present)
        assert stmt.otherwise is not None

    def test_do_abort(self):
        stmt = first_stmt("do { halt(); } abort(s);")
        assert isinstance(stmt, ast.Abort)
        assert not stmt.weak
        assert stmt.handler is None

    def test_do_abort_handle(self):
        stmt = first_stmt("do { halt(); } abort(s) handle { emit(t); }")
        assert stmt.handler is not None

    def test_do_weak_abort(self):
        stmt = first_stmt("do { halt(); } weak_abort(s);")
        assert stmt.weak

    def test_do_suspend(self):
        stmt = first_stmt("do { halt(); } suspend(s);")
        assert isinstance(stmt, ast.Suspend)

    def test_do_while_still_c(self):
        stmt = first_stmt("do { x; } while (0);")
        assert isinstance(stmt, ast.DoWhile)

    def test_par(self):
        stmt = first_stmt("par { emit(t); halt(); }")
        assert isinstance(stmt, ast.Par)
        assert len(stmt.branches) == 2

    def test_empty_par_rejected(self):
        with pytest.raises(ParseError):
            parse_module_body("par { }")

    def test_local_signal_pure(self):
        stmt = first_stmt("signal pure kill;")
        assert isinstance(stmt, ast.SignalDecl)
        assert isinstance(stmt.type, PureType)

    def test_local_signal_typed(self):
        stmt = first_stmt("signal int level;")
        assert str(stmt.type) == "int"

    def test_signal_expr_rejects_arithmetic(self):
        with pytest.raises(ParseError):
            parse_module_body("await(s + 1);")

    def test_module_instantiation_is_call(self):
        stmt = first_stmt("sub(s, t);")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)


class TestCStatements:
    def test_if_then_paper_syntax(self):
        # Figure 1 of the paper writes "if (A) then emit(OUT);".
        stmt = first_stmt("if (1) then emit(t);")
        assert isinstance(stmt, ast.If)

    def test_for_loop(self):
        stmt = first_stmt("int i; for (i = 0; i < 4; i++) { }")
        body = parse_module_body("int i; for (i = 0; i < 4; i++) { }")
        loop = body.body[1]
        assert isinstance(loop, ast.For)
        assert loop.cond is not None

    def test_for_with_decl_init(self):
        stmt = first_stmt("for (int i = 0; i < 4; i++) { }")
        assert isinstance(stmt.init, ast.VarDecl)

    def test_comma_separated_decls(self):
        block = parse_module_body("int a, b;")
        inner = block.body[0]
        assert isinstance(inner, ast.Block)
        assert len(inner.body) == 2

    def test_array_decl_with_macro_length(self):
        block = parse_module_body("int a[3 + 2];")
        assert block.body[0].type.length == 5

    def test_switch_desugars_to_if_chain(self):
        stmt = first_stmt(
            "int x; switch (x) { case 1: emit(t); break;"
            " default: halt(); break; }")
        body = parse_module_body(
            "int x; switch (x) { case 1: emit(t); break;"
            " default: halt(); break; }")
        assert isinstance(body.body[1], ast.If)

    def test_switch_fallthrough_rejected(self):
        with pytest.raises(ParseError):
            parse_module_body(
                "int x; switch (x) { case 1: x = 1; case 2: break; }")

    def test_break_continue_return(self):
        body = parse_module_body(
            "while (1) { break; } while (1) { continue; } return;")
        assert isinstance(body.body[0].body.body[0], ast.Break)
        assert isinstance(body.body[1].body.body[0], ast.Continue)
        assert isinstance(body.body[2], ast.Return)

    def test_brace_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse_module_body("int a[2] = {1, 2};")


class TestExpressions:
    def expr(self, text):
        stmt = first_stmt("x = %s;" % text)
        return stmt.expr.value

    def test_precedence_mul_over_add(self):
        expr = self.expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_xor(self):
        # Figure 2: (crc ^ byte) << 1
        expr = self.expr("(a ^ b) << 1")
        assert expr.op == "<<"

    def test_assignment_right_associative(self):
        stmt = first_stmt("a = b = 1;")
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_ternary(self):
        assert isinstance(self.expr("a ? b : c"), ast.Cond)

    def test_member_chain(self):
        expr = self.expr("pkt.raw.data[3]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Member)

    def test_arrow(self):
        expr = self.expr("p->next")
        assert expr.arrow

    def test_cast(self):
        expr = self.expr("(int) c")
        assert isinstance(expr, ast.Cast)

    def test_cast_to_typedef(self):
        program = parse(
            "typedef unsigned char byte;\n"
            "module m (input pure s, output pure t) { int x; x = (byte) x; }")
        stmt = program.module_named("m").body.body[1]
        assert isinstance(stmt.expr.value, ast.Cast)

    def test_parenthesized_call_not_cast(self):
        expr = self.expr("(f)(1)" if False else "f(1)")
        assert isinstance(expr, ast.Call)

    def test_sizeof_type(self):
        assert isinstance(self.expr("sizeof(int)"), ast.SizeofType)

    def test_sizeof_expr(self):
        assert isinstance(self.expr("sizeof x"), ast.SizeofExpr)

    def test_unary_chain(self):
        expr = self.expr("-~!x")
        assert expr.op == "-"
        assert expr.operand.op == "~"

    def test_postfix_incdec(self):
        expr = self.expr("i++")
        assert isinstance(expr, ast.IncDec) and expr.postfix

    def test_prefix_incdec(self):
        expr = self.expr("--i")
        assert isinstance(expr, ast.IncDec) and not expr.postfix


class TestRoundTrip:
    """parse -> print -> parse yields the same tree shape."""

    def roundtrip(self, src):
        program = parse(src)
        text = to_text(program)
        again = parse(text)
        assert to_text(again) == text
        return again

    def test_module_roundtrip(self):
        self.roundtrip(
            "module m (input pure s, input int v, output pure t) {\n"
            "  int x;\n"
            "  while (1) { do { await(s); x = v + 1; emit(t); } abort(s); }\n"
            "}")

    def test_function_roundtrip(self):
        self.roundtrip("int f(int a) { return a * 2 + 1; }")

    def test_paper_figures_roundtrip(self):
        from repro.designs import PROTOCOL_STACK_ECL
        program = parse(PROTOCOL_STACK_ECL)
        text = to_text(program)
        again = parse(text)
        assert [m.name for m in again.modules()] == [
            "assemble", "checkcrc", "prochdr", "toplevel"]
