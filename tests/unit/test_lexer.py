"""Unit tests for the ECL lexer."""

import pytest

from repro.errors import LexError
from repro.lang import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tokens = tokenize("foo_bar42")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "foo_bar42"

    def test_c_keyword(self):
        tokens = tokenize("while")
        assert tokens[0].kind is TokenKind.KEYWORD

    def test_ecl_keywords_recognized(self):
        for word in ["emit", "emit_v", "await", "halt", "present", "abort",
                     "weak_abort", "suspend", "par", "module", "signal",
                     "input", "output", "pure", "handle", "bool"]:
            token = tokenize(word)[0]
            assert token.kind is TokenKind.KEYWORD, word

    def test_identifier_resembling_keyword(self):
        token = tokenize("awaiting")[0]
        assert token.kind is TokenKind.IDENT

    def test_punctuators_greedy(self):
        assert values("a <<= b") == ["a", "<<=", "b"]
        assert values("a << b") == ["a", "<<", "b"]
        assert values("x->y") == ["x", "->", "y"]
        assert values("i++ + 1") == ["i", "++", "+", 1]


class TestNumbers:
    def test_decimal(self):
        assert values("42") == [42]

    def test_hex(self):
        assert values("0xFF") == [255]

    def test_octal(self):
        assert values("0755") == [493]

    def test_zero(self):
        assert values("0") == [0]

    def test_suffixes_ignored(self):
        assert values("42u 42l 0xffUL") == [42, 42, 255]

    def test_bad_octal_digit(self):
        with pytest.raises(LexError):
            tokenize("089")

    def test_float_rejected(self):
        with pytest.raises(LexError):
            tokenize("1.5")

    def test_hex_without_digits(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestLiterals:
    def test_char_literal(self):
        assert values("'A'") == [65]

    def test_char_escape(self):
        assert values(r"'\n'") == [10]
        assert values(r"'\0'") == [0]
        assert values(r"'\x41'") == [65]

    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_string_with_escapes(self):
        assert values(r'"a\tb"') == ["a\tb"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_comment_not_nested(self):
        assert values("/* /* */ x") == ["x"]


class TestSpans:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].span.start.line == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.column == 3

    def test_filename_in_span(self):
        tokens = tokenize("x", filename="file.ecl")
        assert tokens[0].span.filename == "file.ecl"


class TestPaperGlyphs:
    def test_typographic_tilde_normalized(self):
        # The paper's PDF prints ~ as a typographic tilde.
        tokens = tokenize("˜crc_ok")
        assert tokens[0].is_punct("~")
        assert tokens[1].value == "crc_ok"

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("@")
