"""Unit coverage of the coverage bitmaps and their engine hooks."""

import pickle

import pytest

from repro.errors import EclError
from repro.pipeline import Pipeline
from repro.verify import CoverageMap, CoverageReport

COUNTER_ECL = """
module counter (input pure tick, input int load,
                output int level, output pure high)
{
    int value;

    while (1) {
        await (tick | load);
        present (load) { value = load; }
        present (tick) { value = value + 1; }
        emit_v (level, value);
        if (value > 5) { emit (high); }
    }
}
"""


@pytest.fixture(scope="module")
def handle():
    build = Pipeline().compile_text(COUNTER_ECL, filename="counter.ecl")
    return build.module("counter")


def drive(reactor, coverage):
    reactor.enable_coverage(coverage)
    reactor.react()
    reactor.react(values={"load": 5})
    for _ in range(3):
        reactor.react(inputs=["tick"])
    reactor.react()  # quiet instant


class TestCoverageMap:
    def test_dimensions_follow_the_cached_tables(self, handle):
        efsm = handle.efsm()
        coverage = CoverageMap.for_efsm(efsm)
        assert len(coverage.states) == efsm.state_count
        assert len(coverage.transitions) == len(efsm.transition_table())
        assert coverage.emit_names == tuple(sorted(efsm.emitted_signals()))
        assert len(efsm.transition_table()) == efsm.transition_count()

    def test_native_and_efsm_mark_identical_bits(self, handle):
        maps = {}
        for engine in ("efsm", "native"):
            coverage = CoverageMap.for_efsm(handle.efsm())
            drive(handle.reactor(engine=engine), coverage)
            maps[engine] = coverage
        assert bytes(maps["efsm"].states) == bytes(maps["native"].states)
        assert bytes(maps["efsm"].transitions) == \
            bytes(maps["native"].transitions)
        assert bytes(maps["efsm"].emits) == bytes(maps["native"].emits)
        assert maps["efsm"].covered_transitions > 0

    def test_react_many_marks_like_sequential_react(self, handle):
        sequential = CoverageMap.for_efsm(handle.efsm())
        drive(handle.reactor(engine="native"), sequential)
        batched = CoverageMap.for_efsm(handle.efsm())
        reactor = handle.reactor(engine="native")
        reactor.enable_coverage(batched)
        reactor.react_many([{}, {"load": 5}, {"tick": None},
                            {"tick": None}, {"tick": None}, {}])
        assert bytes(batched.transitions) == bytes(sequential.transitions)
        assert bytes(batched.states) == bytes(sequential.states)

    def test_merge_is_bytewise_or(self, handle):
        left = CoverageMap.for_efsm(handle.efsm())
        right = CoverageMap.for_efsm(handle.efsm())
        left.mark_state(0)
        right.mark_state(1)
        right.mark_transition(0)
        right.mark_emit(right.emit_names[0])
        left.merge(right)
        assert left.covered_states == 2
        assert left.covered_transitions == 1
        assert left.covered_emits == 1

    def test_payload_round_trip(self, handle):
        coverage = CoverageMap.for_efsm(handle.efsm())
        drive(handle.reactor(engine="native"), coverage)
        payload = coverage.as_payload()
        fresh = CoverageMap.for_efsm(handle.efsm())
        fresh.merge_payload(payload)
        assert bytes(fresh.transitions) == bytes(coverage.transitions)
        assert payload["covered_transitions"] == \
            coverage.covered_transitions

    def test_shape_mismatch_rejected(self, handle):
        coverage = CoverageMap.for_efsm(handle.efsm())
        with pytest.raises(EclError):
            coverage.merge_payload(
                {"states": "00", "transitions": "00", "emits": "00"})

    def test_adds_to_detects_fresh_bits(self, handle):
        merged = CoverageMap.for_efsm(handle.efsm())
        probe = CoverageMap.for_efsm(handle.efsm())
        assert not probe.adds_to(merged)
        probe.mark_transition(1)
        assert probe.adds_to(merged)
        merged.merge(probe)
        assert not probe.adds_to(merged)

    def test_maps_pickle(self, handle):
        coverage = CoverageMap.for_efsm(handle.efsm())
        coverage.mark_state(0)
        clone = pickle.loads(pickle.dumps(coverage))
        assert clone.covered_states == 1
        clone.mark_emit(clone.emit_names[0])  # index survives


class TestCoverageReport:
    def test_uncovered_transitions_listed(self, handle):
        efsm = handle.efsm()
        coverage = CoverageMap.for_efsm(efsm)
        coverage.mark_transition(0)
        report = CoverageReport.from_map(coverage, efsm)
        assert report.covered_transitions == 1
        assert len(report.uncovered_transitions) == \
            report.total_transitions - 1
        listed = {entry[0] for entry in report.uncovered_transitions}
        assert 0 not in listed
        assert "uncovered transition" in report.summary()

    def test_complete_flag_and_dict(self, handle):
        efsm = handle.efsm()
        coverage = CoverageMap.for_efsm(efsm)
        for tid in range(len(coverage.transitions)):
            coverage.mark_transition(tid)
        report = CoverageReport.from_map(coverage, efsm)
        assert report.complete
        assert report.transition_percent == 100.0
        data = report.as_dict()
        assert data["uncovered_transitions"] == []
        assert data["total_transitions"] == efsm.transition_count()


class TestTransitionIdStability:
    def test_table_is_occurrence_based_and_cached(self, handle):
        efsm = handle.efsm()
        table = efsm.transition_table()
        assert len(table) == efsm.transition_count()
        assert efsm.transition_table() is table  # cached
        base = efsm.state_leaf_base()
        assert base[0] == 0
        assert all(table[base[s.index]][0] == s.index
                   for s in efsm.states)

    def test_leaf_counts_do_not_survive_pickling(self, handle):
        efsm = handle.efsm()
        efsm.leaf_counts()
        clone = pickle.loads(pickle.dumps(efsm))
        assert clone._leaf_counts is None  # stale object ids never travel
        assert clone.transition_table() == efsm.transition_table()
        assert clone.state_leaf_base() == efsm.state_leaf_base()
