"""Unit tests for the reactors (both engines) and the sync network."""

import pytest

from repro.core import EclCompiler
from repro.errors import EclError, EvalError
from repro.runtime.network import SyncNetwork


def design(src):
    return EclCompiler().compile_text(src)


COUNTER = """
module counter (input pure tick, input pure reset_cnt,
                output int value)
{
    int n;
    n = 0;
    while (1) {
        await (tick | reset_cnt);
        present (reset_cnt) { n = 0; } else { n = n + 1; }
        emit_v (value, n);
    }
}
"""


@pytest.fixture(params=["interp", "efsm"])
def engine(request):
    return request.param


class TestReactorBasics:
    def test_counter_counts(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        reactor.react()
        values = []
        for _ in range(3):
            out = reactor.react(inputs={"tick"})
            values.append(out.values["value"])
        assert values == [1, 2, 3]

    def test_reset_input(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        reactor.react()
        reactor.react(inputs={"tick"})
        reactor.react(inputs={"tick"})
        out = reactor.react(inputs={"reset_cnt"})
        assert out.values["value"] == 0

    def test_unknown_input_rejected(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        with pytest.raises(EvalError):
            reactor.react(inputs={"bogus"})

    def test_output_cannot_be_driven(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        with pytest.raises(EvalError):
            reactor.react(values={"value": 1})

    def test_variable_peek(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        reactor.react()
        reactor.react(inputs={"tick"})
        assert reactor.variable("n") == 1

    def test_signal_value_peek(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        reactor.react()
        reactor.react(inputs={"tick"})
        assert reactor.signal_value("value") == 1

    def test_reset_restarts_control(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        reactor.react()
        reactor.react(inputs={"tick"})
        reactor.reset()
        reactor.react()  # start-up again
        out = reactor.react(inputs={"tick"})
        # control restarted; data memory persists by design, so the
        # counter resumes from its stored value + 1.
        assert "value" in out.emitted

    def test_data_bytes_accounting(self, engine):
        reactor = design(COUNTER).module("counter").reactor(engine=engine)
        assert reactor.data_bytes() >= 4  # at least the int variable

    def test_termination(self, engine):
        src = ("module once (input pure go, output pure done) {"
               " await(go); emit(done); }")
        reactor = design(src).module("once").reactor(engine=engine)
        reactor.react()
        out = reactor.react(inputs={"go"})
        assert out.terminated
        assert reactor.react(inputs={"go"}).terminated


class TestEngineEquivalence:
    def test_counter_trace_equivalence(self):
        from repro.analysis import compare_on_trace
        module = design(COUNTER).module("counter")
        trace = [{}, {"tick": None}, {"tick": None},
                 {"reset_cnt": None}, {"tick": None},
                 {"tick": None, "reset_cnt": None}, {}]
        assert compare_on_trace(module.kernel, module.efsm(), trace) is None


PRODUCER = """
module producer (input pure tick, output int data)
{
    int n;
    n = 0;
    while (1) {
        await (tick);
        n = n + 1;
        emit_v (data, n * 10);
    }
}
"""

CONSUMER = """
module consumer (input int data, output int twice)
{
    while (1) {
        await (data);
        emit_v (twice, data * 2);
    }
}
"""


class TestSyncNetwork:
    def build_net(self):
        net = SyncNetwork()
        net.add_node("producer",
                     design(PRODUCER).module("producer").reactor())
        net.add_node("consumer",
                     design(CONSUMER).module("consumer").reactor())
        return net

    def test_same_instant_forward_delivery(self):
        net = self.build_net()
        net.step()  # start-up
        out = net.step(inputs={"tick"})
        # producer emits data, consumer doubles it in the same instant.
        assert out == {"twice": 20}

    def test_sequence(self):
        net = self.build_net()
        net.step()
        outs = [net.step(inputs={"tick"}) for _ in range(3)]
        assert [o.get("twice") for o in outs] == [20, 40, 60]

    def test_two_producers_rejected(self):
        net = SyncNetwork()
        net.add_node("p1", design(PRODUCER).module("producer").reactor())
        with pytest.raises(EclError):
            net.add_node("p2",
                         design(PRODUCER).module("producer").reactor())

    def test_cannot_drive_internal_signal(self):
        net = self.build_net()
        net.step()
        with pytest.raises(EclError):
            net.step(values={"data": 5})

    def test_back_edge_delayed_one_instant(self):
        echo_src = """
module echo (input int inp, output int outp)
{
    while (1) { await (inp); emit_v (outp, inp + 1); }
}
"""
        relay_src = """
module relay (input pure go, input int back, output int fwd)
{
    int seen;
    while (1) {
        await (go | back);
        present (back) { seen = back; }
        present (go) { emit_v (fwd, 100); }
    }
}
"""
        net = SyncNetwork()
        net.add_node("relay", design(relay_src).module("relay").reactor(),
                     bindings={"fwd": "fwd", "back": "back"})
        net.add_node("echo", design(echo_src).module("echo").reactor(),
                     bindings={"inp": "fwd", "outp": "back"})
        net.step()
        net.step(inputs={"go"})      # relay emits fwd; echo answers back
        net.step()                   # back edge delivered now
        assert net.node("relay").variable("seen") == 101
