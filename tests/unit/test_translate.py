"""Unit tests for the ECL -> Esterel kernel translation."""

import pytest

from repro.ecl import translate_module
from repro.errors import InstantaneousLoopError, TranslationError
from repro.esterel import kernel as k
from repro.lang import parse_text


def translate(body, header="", signals="input pure s, input int v, "
              "output pure t, output int w", name="m", extra=""):
    src = "%smodule %s (%s) { %s }\n%s" % (header, name, signals, body,
                                           extra)
    program, types = parse_text(src)
    return translate_module(program, types, name)


class TestBasicStatements:
    def test_emit_pure(self):
        module = translate("emit(t);")
        assert isinstance(module.body, k.Emit)
        assert module.body.signal == "t"

    def test_emit_valued(self):
        module = translate("emit_v(w, v + 1);")
        assert module.body.value is not None

    def test_emit_unknown_signal(self):
        with pytest.raises(TranslationError):
            translate("emit(zz);")

    def test_emit_input_rejected(self):
        with pytest.raises(TranslationError):
            translate("emit(s);")

    def test_emit_v_on_pure_rejected(self):
        with pytest.raises(TranslationError):
            translate("emit_v(t, 1);")

    def test_bare_emit_on_valued_rejected(self):
        with pytest.raises(TranslationError):
            translate("emit(w);")

    def test_await_signal(self):
        module = translate("await(s);")
        assert isinstance(module.body, k.Await)

    def test_await_empty_is_delta_pause(self):
        module = translate("await();")
        assert isinstance(module.body, k.Pause)
        assert module.body.delta

    def test_await_undeclared_signal(self):
        with pytest.raises(TranslationError):
            translate("await(zz);")

    def test_halt(self):
        module = translate("halt();")
        assert isinstance(module.body, k.Halt)

    def test_present(self):
        module = translate("present (s) { emit(t); } else { halt(); }")
        assert isinstance(module.body, k.Present)

    def test_abort_with_handler(self):
        module = translate(
            "do { halt(); } abort(s) handle { emit(t); }")
        assert isinstance(module.body, k.Abort)
        assert module.body.handler is not None
        assert not module.body.weak

    def test_weak_abort(self):
        module = translate("do { halt(); } weak_abort(s);")
        assert module.body.weak

    def test_suspend(self):
        module = translate("do { halt(); } suspend(s);")
        assert isinstance(module.body, k.Suspend)

    def test_par(self):
        module = translate("par { emit(t); halt(); }")
        assert isinstance(module.body, k.Par)


class TestVariables:
    def test_variables_hoisted(self):
        module = translate("int x; { int y; y = 1; }")
        names = [name for name, _t in module.variables]
        assert "x" in names and "y" in names

    def test_initializer_becomes_action(self):
        module = translate("int x = 5;")
        assert isinstance(module.body, k.Action)

    def test_shadowing_renamed(self):
        module = translate("int x = 1; { int x = 2; } emit(t);")
        names = [name for name, _t in module.variables]
        assert len(names) == 2
        assert len(set(names)) == 2

    def test_shadowed_use_points_at_renamed_var(self):
        module = translate(
            "int x = 1; { int x; x = 2; emit_v(w, x); }")
        # The inner emit must reference the renamed inner variable.
        emits = _collect(module.body, k.Emit)
        value_names = {e.value.id for e in emits if hasattr(e.value, "id")}
        inner = [n for n, _t in module.variables if n != "x"]
        assert value_names == set(inner)

    def test_local_signal_hoisted(self):
        module = translate("signal pure kill; emit(kill);")
        assert ("kill", module.local_signals[0][1]) == \
            module.local_signals[0]


class TestControlFlow:
    def test_while_one_is_plain_loop(self):
        module = translate("while (1) { await(s); }")
        loops = _collect(module.body, k.Loop)
        assert loops
        # No data test generated for the constant condition.
        assert not _collect(module.body, k.IfData)

    def test_while_zero_vanishes(self):
        module = translate("while (0) { await(s); } emit(t);")
        assert isinstance(module.body, k.Emit)

    def test_while_data_cond_gets_ifdata(self):
        module = translate("int x; while (x < 3) { await(s); }")
        assert _collect(module.body, k.IfData)

    def test_break_exits_loop(self):
        module = translate(
            "while (1) { await(s); break; } emit(t);")
        assert _collect(module.body, k.Exit)

    def test_continue_in_loop(self):
        module = translate(
            "while (1) { await(s); continue; }")
        assert _collect(module.body, k.Exit)

    def test_break_outside_loop_rejected(self):
        with pytest.raises(TranslationError):
            translate("break;")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(TranslationError):
            translate("continue;")

    def test_break_does_not_cross_par(self):
        with pytest.raises(TranslationError):
            translate("while (1) { par { break; await(s); } }")

    def test_return_exits_module(self):
        module = translate("await(s); return; emit(t);")
        assert isinstance(module.body, k.Trap)

    def test_return_value_rejected(self):
        with pytest.raises(TranslationError):
            translate("return 3;")

    def test_for_loop_with_await(self):
        module = translate(
            "int i; for (i = 0; i < 4; i++) { await(s); }")
        assert _collect(module.body, k.Loop)
        assert _collect(module.body, k.Await)

    def test_instantaneous_reactive_loop_rejected(self):
        with pytest.raises(InstantaneousLoopError):
            translate("while (1) { emit(t); }")

    def test_data_if_becomes_ifdata(self):
        module = translate("int x; if (x > 0) emit(t); else halt();")
        assert isinstance(module.body, k.IfData)


class TestDataLoops:
    def test_data_loop_becomes_action(self):
        module = translate(
            "int i; int a; while (1) { await(s);"
            " for (i = 0; i < 8; i++) a += i; }")
        assert len(module.data_blocks) == 1
        assert _collect(module.body, k.Action)

    def test_extraction_can_be_disabled(self):
        src = ("module m (input pure s, output pure t) {"
               " int i; while (1) { await(s);"
               " for (i = 0; i < 8; i++) i = i; } }")
        program, types = parse_text(src)
        module = translate_module(program, types, "m",
                                  extract_data_loops=False)
        assert module.data_blocks == []
        assert _collect(module.body, k.Action)  # still atomic


class TestInstantiation:
    HEADER = (
        "module sub (input pure go, output pure done) {"
        " while (1) { await(go); emit(done); } }\n"
    )

    def test_inline_renames_locals(self):
        module = translate("sub(s, t);", header=self.HEADER)
        assert module.inlined_instances

    def test_two_instances_disjoint(self):
        src = self.HEADER + (
            "module sub2 (input pure go, output pure done) {"
            " int n; while (1) { await(go); n++; emit(done); } }\n"
            "module m (input pure s, output pure t, output pure u) {"
            " par { sub2(s, t); sub2(s, u); } }")
        program, types = parse_text(src)
        module = translate_module(program, types, "m")
        names = [name for name, _t in module.variables]
        assert len(names) == 2 and len(set(names)) == 2

    def test_two_instances_driving_same_signal_rejected(self):
        # The paper's single-writer rule applies across instances too.
        src = self.HEADER + (
            "module m (input pure s, output pure t) {"
            " par { sub(s, t); sub(s, t); } }")
        program, types = parse_text(src)
        with pytest.raises(TranslationError):
            translate_module(program, types, "m")

    def test_arity_mismatch(self):
        with pytest.raises(TranslationError):
            translate("sub(s);", header=self.HEADER)

    def test_argument_must_be_signal_name(self):
        with pytest.raises(TranslationError):
            translate("sub(s, 1 + 2);", header=self.HEADER)

    def test_output_cannot_drive_enclosing_input(self):
        with pytest.raises(TranslationError):
            translate("sub(s, s);", header=self.HEADER)

    def test_type_mismatch(self):
        header = ("module subv (input int x, output pure done) {"
                  " await(x); emit(done); }\n")
        with pytest.raises(TranslationError):
            translate("subv(s, t);", header=header)

    def test_recursive_instantiation_rejected(self):
        src = ("module a (input pure x, output pure y) { a(x, y); }")
        program, types = parse_text(src)
        with pytest.raises(TranslationError):
            translate_module(program, types, "a")

    def test_paper_toplevel_inlines_three_modules(self):
        from repro.designs import PROTOCOL_STACK_ECL
        program, types = parse_text(PROTOCOL_STACK_ECL)
        module = translate_module(program, types, "toplevel")
        assert len(module.inlined_instances) == 3
        locals_ = {name for name, _t in module.local_signals}
        assert "packet" in locals_ and "crc_ok" in locals_


class TestBranchScheduling:
    def test_emitter_scheduled_before_tester(self):
        # The tester comes first in source; causality scheduling must
        # move the emitter branch ahead.
        module = translate(
            "signal pure mid;"
            "par {"
            "  { present (mid) emit(t); }"
            "  { emit(mid); }"
            "}")
        par = _collect(module.body, k.Par)[0]
        assert isinstance(par.branches[0], k.Emit)


def _collect(stmt, node_type):
    found = []

    def visit(node):
        if node is None or not isinstance(node, k.KStmt):
            return
        if isinstance(node, node_type):
            found.append(node)
        for attr in ("then", "otherwise", "body", "handler"):
            child = getattr(node, attr, None)
            if isinstance(child, k.KStmt):
                visit(child)
        for attr in ("stmts", "branches"):
            children = getattr(node, attr, None)
            if children:
                for child in children:
                    visit(child)

    visit(stmt)
    return found
