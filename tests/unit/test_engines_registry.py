"""Unit tests for the unified engine registry (repro.engines) and the
versioned batch-spec schema it rides with."""

import json
import os
import warnings

import pytest

from repro.engines import (Engine, SpecOutcome, adapter_names,
                           derive_spec_seed, engine_names, get_engine)
from repro.errors import EclError
from repro.farm.jobs import SimJob, StimulusSpec
from repro.farm.spec import SPEC_VERSION, check_version, load_spec
from repro.pipeline import Pipeline

ECHO = """
module echo (input pure ping, output pure pong)
{
    while (1) { await (ping); emit (pong); }
}
"""


@pytest.fixture(scope="module")
def echo_handle():
    return Pipeline().compile_text(ECHO, filename="echo").module("echo")


# -- registry ----------------------------------------------------------


def test_engine_names_cover_every_job_engine():
    from repro.farm.jobs import ENGINE_NAMES

    assert set(engine_names()) == set(ENGINE_NAMES)
    assert set(adapter_names()) == set(ENGINE_NAMES) - {"equivalence"}


def test_get_engine_caches_and_rejects_unknown():
    assert get_engine("native") is get_engine("native")
    assert isinstance(get_engine("vector"), Engine)
    with pytest.raises(EclError) as caught:
        get_engine("warp")
    assert "unknown engine" in str(caught.value)


def test_capabilities():
    assert "vector_sweep" in get_engine("vector").capabilities()
    assert "requires_numpy" in get_engine("vector").capabilities()
    assert "compiled" in get_engine("native").capabilities()
    assert "reference" in get_engine("interp").capabilities()
    assert "tasks" in get_engine("rtos").capabilities()
    assert get_engine("equivalence").capabilities() == {"lockstep"}
    for name in ("interp", "efsm", "native", "rtos"):
        assert get_engine(name).available() is True
        get_engine(name).require()  # no-op


def test_equivalence_has_no_adapter(echo_handle):
    job = SimJob(design="d", module="echo", engine="equivalence")
    with pytest.raises(EclError):
        get_engine("equivalence").build(lambda name: echo_handle, job)


def test_reactor_resolution(echo_handle):
    native = get_engine("native").reactor(echo_handle)
    assert type(native).__name__ == "NativeReactor"
    with pytest.raises(EclError):
        get_engine("rtos").reactor(echo_handle)
    with pytest.raises(EclError):
        get_engine("equivalence").reactor(echo_handle)


def test_run_trace_steps_explicit_instants(echo_handle):
    # The first instant arms the (non-immediate) await; later pings emit.
    trace = [{"ping": None}, {}, {"ping": None}, {"ping": None}]
    records = get_engine("native").run_trace(echo_handle, trace)
    assert [record["emitted"] for record in records] == [[], [], ["pong"],
                                                         ["pong"]]
    assert records == get_engine("interp").run_trace(echo_handle, trace)


def test_run_spec_is_engine_uniform(echo_handle):
    spec = StimulusSpec.random(length=12)
    outcomes = {
        name: get_engine(name).run_spec(
            echo_handle, spec, n_instances=4, coverage=True)
        for name in ("interp", "efsm", "native")
    }
    for name, outcome in outcomes.items():
        assert isinstance(outcome, SpecOutcome), name
        assert len(outcome) == 4
        assert outcome.errors == [None] * 4
    assert outcomes["interp"].records == outcomes["native"].records
    assert outcomes["efsm"].records == outcomes["native"].records
    # efsm/native mark real state bitmaps; interp only marks emits.
    efsm_cov = outcomes["efsm"].coverage[0]
    native_cov = outcomes["native"].coverage[0]
    assert efsm_cov.as_payload() == native_cov.as_payload()


def test_run_spec_derived_seeds_are_canonical():
    spec = StimulusSpec.random(length=5, salt=3)
    assert derive_spec_seed(spec, 0) != derive_spec_seed(spec, 1)
    assert derive_spec_seed(spec, 2) == derive_spec_seed(spec, 2)
    from repro.runtime.vector import NUMPY_AVAILABLE

    if NUMPY_AVAILABLE:
        from repro.runtime.vector import derive_seed

        assert derive_seed(spec, 7) == derive_spec_seed(spec, 7)


def test_legacy_farm_exports_warn():
    import repro.farm as farm_pkg

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engines = farm_pkg.ENGINES
        build = farm_pkg.build_engine
    assert len(caught) == 2
    assert all(issubclass(w.category, DeprecationWarning) for w in caught)
    from repro.farm.engines import ENGINES as real_engines
    from repro.farm.engines import build_engine as real_build

    assert engines is real_engines
    assert build is real_build
    with pytest.raises(AttributeError):
        farm_pkg.no_such_name


# -- spec v2 -----------------------------------------------------------


def write_spec(tmp_path, document):
    path = os.path.join(tmp_path, "spec.json")
    with open(path, "w") as handle:
        json.dump(document, handle)
    return path


def ecl_file(tmp_path):
    path = os.path.join(tmp_path, "echo.ecl")
    with open(path, "w") as handle:
        handle.write(ECHO)
    return "echo.ecl"


def test_spec_v2_engine_and_n_instances(tmp_path):
    tmp_path = str(tmp_path)
    document = {
        "spec_version": 2,
        "designs": {"echo": ecl_file(tmp_path)},
        "jobs": [{"design": "echo", "modules": ["echo"],
                  "engine": "vector", "n_instances": 5, "length": 8}],
    }
    _designs, jobs, _settings = load_spec(write_spec(tmp_path, document))
    assert len(jobs) == 5
    assert all(job.engine == "vector" for job in jobs)
    assert all(job.stimulus.length == 8 for job in jobs)


def test_spec_v1_upconverts(tmp_path):
    tmp_path = str(tmp_path)
    document = {
        "designs": {"echo": ecl_file(tmp_path)},
        "jobs": [{"design": "echo", "modules": ["echo"],
                  "engines": ["native"], "traces": 3}],
    }
    _designs, jobs, _settings = load_spec(write_spec(tmp_path, document))
    assert len(jobs) == 3
    assert jobs[0].engine == "native"


def test_spec_future_version_rejected(tmp_path):
    tmp_path = str(tmp_path)
    document = {
        "spec_version": SPEC_VERSION + 1,
        "designs": {"echo": ecl_file(tmp_path)},
        "jobs": [{"design": "echo", "modules": ["echo"]}],
    }
    with pytest.raises(EclError) as caught:
        load_spec(write_spec(tmp_path, document))
    assert "newer" in str(caught.value)


@pytest.mark.parametrize("version", [0, -1, "2", True, 2.0])
def test_spec_bad_version_value_rejected(version):
    with pytest.raises(EclError):
        check_version({"spec_version": version})


@pytest.mark.parametrize("conflict", [
    {"engine": "vector", "engines": ["native"]},
    {"traces": 2, "n_instances": 3},
])
def test_spec_conflicting_spellings_rejected(tmp_path, conflict):
    tmp_path = str(tmp_path)
    entry = {"design": "echo", "modules": ["echo"]}
    entry.update(conflict)
    document = {"spec_version": 2,
                "designs": {"echo": ecl_file(tmp_path)}, "jobs": [entry]}
    with pytest.raises(EclError):
        load_spec(write_spec(tmp_path, document))


def test_campaign_spec_shares_schema(tmp_path):
    from repro.verify.spec import load_campaign_spec

    tmp_path = str(tmp_path)
    document = {
        "spec_version": 2,
        "designs": {"echo": {"text": ECHO}},  # inline form now accepted
        "design": "echo",
        "module": "echo",
        "engine": "native",
        "rounds": 1,
        "jobs_per_round": 2,
        "length": 4,
    }
    campaign = load_campaign_spec(write_spec(tmp_path, document))
    assert campaign.engine == "native"
    with_version = dict(document, spec_version=SPEC_VERSION + 1)
    with pytest.raises(EclError):
        load_campaign_spec(write_spec(tmp_path, with_version))


def test_serve_rejects_future_spec_version():
    from repro.farm.spec import expand_document

    document = {"spec_version": SPEC_VERSION + 1,
                "jobs": [{"design": "echo", "modules": ["echo"]}]}
    with pytest.raises(EclError):
        expand_document(document, {"echo": ECHO})
