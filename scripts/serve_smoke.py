"""CI smoke test for the serving layer, end to end over a real socket.

Starts ``eclc serve`` as a subprocess, submits a batch over HTTP,
streams the stable result rows, runs the identical spec through
``eclc farm run`` directly, and asserts the two serializations are
byte-identical row for row — the serving layer's core determinism
contract, exercised exactly the way a user would.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main as eclc  # noqa: E402
from repro.designs import PROTOCOL_STACK_ECL  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

SPEC_JOBS = [
    {"design": "stack", "modules": ["toplevel"],
     "engines": ["native", "efsm"], "traces": 4, "length": 12,
     "seed": 7},
]

STABLE_VOLATILE = ("elapsed", "trace_path", "worker_pid")


def stable_bytes(row):
    payload = {key: value for key, value in row.items()
               if key not in STABLE_VOLATILE}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def start_server(data_root):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--data-root", data_root, "-j", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
    )
    line = process.stdout.readline()
    match = re.search(r"listening on [^:]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit("serve did not announce a port: %r" % line)
    return process, int(match.group(1))


def run():
    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    stack_path = os.path.join(workdir, "stack.ecl")
    with open(stack_path, "w") as handle:
        handle.write(PROTOCOL_STACK_ECL)
    spec = {
        "workers": 1,
        "ledger": "direct-ledger",
        "designs": {"stack": stack_path},
        "jobs": SPEC_JOBS,
    }
    spec_path = os.path.join(workdir, "batch.json")
    with open(spec_path, "w") as handle:
        json.dump(spec, handle)

    process, port = start_server(os.path.join(workdir, "serve-data"))
    try:
        client = ServeClient(port=port)
        assert client.healthz(), "healthz failed"

        # submit via the CLI (inlines the design), stream via HTTP
        rows_path = os.path.join(workdir, "rows.json")
        rc = eclc(["submit", spec_path, "--port", str(port), "--watch",
                   "--stable", "--report", rows_path])
        assert rc == 0, "eclc submit exited %d" % rc
        with open(rows_path) as handle:
            streamed = sorted(json.load(handle),
                              key=lambda row: row["index"])

        # second identical submission must be fully cache-served
        before = client.status()
        rc = eclc(["submit", spec_path, "--port", str(port), "--watch"])
        assert rc == 0, "second eclc submit exited %d" % rc
        after = client.status()
        misses = [(t["tenant"],
                   t["cache"]["misses"]) for t in after["tenants"]]
        misses_before = [(t["tenant"], t["cache"]["misses"])
                         for t in before["tenants"]]
        assert misses == misses_before, (
            "repeat submission compiled: %r -> %r"
            % (misses_before, misses))

        client.shutdown()
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()

    # the same spec, straight through the farm
    report_path = os.path.join(workdir, "report.json")
    rc = eclc(["farm", "run", "--spec", spec_path,
               "--report", report_path])
    assert rc == 0, "eclc farm run exited %d" % rc
    with open(report_path) as handle:
        direct = sorted(json.load(handle)["results"],
                        key=lambda row: row["index"])

    assert len(streamed) == len(direct) == 8, (
        "expected 8 rows, got %d streamed / %d direct"
        % (len(streamed), len(direct)))
    for service_row, farm_row in zip(streamed, direct):
        left = json.dumps(service_row, sort_keys=True,
                          separators=(",", ":"))
        right = stable_bytes(farm_row)
        assert left == right, (
            "row %d diverged:\n  serve: %s\n  farm:  %s"
            % (service_row["index"], left, right))
    print("serve smoke: %d rows byte-identical to eclc farm run, "
          "zero compile misses on repeat submission" % len(streamed))


if __name__ == "__main__":
    run()
