"""CI smoke test for the serving layer, end to end over a real socket.

Starts ``eclc serve`` as a subprocess, submits a batch over HTTP,
streams the stable result rows, runs the identical spec through
``eclc farm run`` directly, and asserts the two serializations are
byte-identical row for row — the serving layer's core determinism
contract, exercised exactly the way a user would.

Also scrapes ``GET /v1/metrics`` while a batch is in flight, asserts
the key telemetry series exist and parse as Prometheus text, and
writes the final exposition + JSON snapshot to ``benchmarks/out/``
for CI to upload next to the BENCH artifacts.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main as eclc  # noqa: E402
from repro.designs import PROTOCOL_STACK_ECL  # noqa: E402
from repro.serve import ServeClient  # noqa: E402
from repro.telemetry import parse_prometheus  # noqa: E402

#: Series every instrumented service run must expose (the stable
#: metric-name contract; see the README catalog).  This smoke runs
#: ``-j 2``, which auto-selects the process-backed pool: compile and
#: execute counters (``ecl_pipeline_cache_requests_total``,
#: ``ecl_farm_jobs_total``) then live in the worker children's own
#: registries, not the parent exposition — the thread-mode
#: integration tests keep those in the contract.
REQUIRED_SERIES = (
    "ecl_serve_queue_depth",
    "ecl_serve_admitted_total",
    "ecl_serve_jobs_executed_total",
    "ecl_serve_batch_seconds_count",
    "ecl_serve_journal_appends_total",
    "ecl_pool_mode",
)

SPEC_JOBS = [
    {"design": "stack", "modules": ["toplevel"],
     "engines": ["native", "efsm"], "traces": 4, "length": 12,
     "seed": 7},
]

STABLE_VOLATILE = ("elapsed", "trace_path", "worker_pid")


def stable_bytes(row):
    payload = {key: value for key, value in row.items()
               if key not in STABLE_VOLATILE}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def start_server(data_root):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--data-root", data_root, "-j", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
    )
    line = process.stdout.readline()
    match = re.search(r"listening on [^:]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit("serve did not announce a port: %r" % line)
    return process, int(match.group(1))


def run():
    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    stack_path = os.path.join(workdir, "stack.ecl")
    with open(stack_path, "w") as handle:
        handle.write(PROTOCOL_STACK_ECL)
    spec = {
        "workers": 1,
        "ledger": "direct-ledger",
        "designs": {"stack": stack_path},
        "jobs": SPEC_JOBS,
    }
    spec_path = os.path.join(workdir, "batch.json")
    with open(spec_path, "w") as handle:
        json.dump(spec, handle)

    process, port = start_server(os.path.join(workdir, "serve-data"))
    try:
        client = ServeClient(port=port)
        assert client.healthz(), "healthz failed"

        # scrape /v1/metrics while a batch is in flight: admission is
        # synchronous, so right after submit() returns the batch is
        # live and the exposition must already carry its series
        document = {
            "designs": {"stack": {"text": PROTOCOL_STACK_ECL}},
            "jobs": SPEC_JOBS,
        }
        inflight = client.submit(document)
        midflight = parse_prometheus(client.metrics_text())
        assert "ecl_serve_admitted_total" in midflight, (
            "mid-batch scrape missing admission counter: %r"
            % sorted(midflight))
        assert "ecl_serve_queue_depth" in midflight, (
            "mid-batch scrape missing queue depth gauge")
        appends = {labels.get("kind"): value for labels, value
                   in midflight.get("ecl_serve_journal_appends_total",
                                    [])}
        assert appends.get("admit", 0) >= 1, (
            "admission not journaled before the scrape: %r" % appends)
        drained = list(client.stream_results(inflight["batch"]))
        assert len(drained) == 8, "in-flight batch lost rows"

        # submit via the CLI (inlines the design), stream via HTTP
        rows_path = os.path.join(workdir, "rows.json")
        rc = eclc(["submit", spec_path, "--port", str(port), "--watch",
                   "--stable", "--report", rows_path])
        assert rc == 0, "eclc submit exited %d" % rc
        with open(rows_path) as handle:
            streamed = sorted(json.load(handle),
                              key=lambda row: row["index"])

        # second identical submission must be fully cache-served
        before = client.status()
        rc = eclc(["submit", spec_path, "--port", str(port), "--watch"])
        assert rc == 0, "second eclc submit exited %d" % rc
        after = client.status()
        misses = [(t["tenant"],
                   t["cache"]["misses"]) for t in after["tenants"]]
        misses_before = [(t["tenant"], t["cache"]["misses"])
                         for t in before["tenants"]]
        assert misses == misses_before, (
            "repeat submission compiled: %r -> %r"
            % (misses_before, misses))

        # final scrape: every series in the contract exists and the
        # whole exposition round-trips through the stdlib parser;
        # the snapshot lands next to the BENCH JSONs for upload
        text = client.metrics_text()
        series = parse_prometheus(text)
        missing = [name for name in REQUIRED_SERIES
                   if name not in series]
        assert not missing, "metrics contract broken: %s" % missing
        modes = {labels.get("mode"): value
                 for labels, value in series["ecl_pool_mode"]}
        assert modes.get("process") == 1, (
            "-j 2 should report a process pool: %r" % modes)
        out_dir = os.path.join(REPO, "benchmarks", "out")
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, "metrics_snapshot.txt"),
                  "w") as handle:
            handle.write(text)
        with open(os.path.join(out_dir, "metrics_snapshot.json"),
                  "w") as handle:
            json.dump(client.metrics_json(), handle, indent=2,
                      sort_keys=True)

        client.shutdown()
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()

    # the same spec, straight through the farm
    report_path = os.path.join(workdir, "report.json")
    rc = eclc(["farm", "run", "--spec", spec_path,
               "--report", report_path])
    assert rc == 0, "eclc farm run exited %d" % rc
    with open(report_path) as handle:
        direct = sorted(json.load(handle)["results"],
                        key=lambda row: row["index"])

    assert len(streamed) == len(direct) == 8, (
        "expected 8 rows, got %d streamed / %d direct"
        % (len(streamed), len(direct)))
    for service_row, farm_row in zip(streamed, direct):
        left = json.dumps(service_row, sort_keys=True,
                          separators=(",", ":"))
        right = stable_bytes(farm_row)
        assert left == right, (
            "row %d diverged:\n  serve: %s\n  farm:  %s"
            % (service_row["index"], left, right))
    print("serve smoke: %d rows byte-identical to eclc farm run, "
          "zero compile misses on repeat submission, %d metric "
          "series scraped" % (len(streamed), len(series)))


if __name__ == "__main__":
    run()
