"""CI smoke test for crash recovery: SIGKILL mid-batch, then resume.

Two phases against real ``eclc serve`` processes:

1. **Server crash + journal replay** — starts ``eclc serve`` with a
   durable data root, submits a batch over HTTP, SIGKILLs the server
   while the batch is partially complete, and restarts it with
   ``--recover`` (the default) on the same data root.  The revived
   service must re-admit the unfinished batch from its journal, replay
   the rows that were already recorded, re-execute only the missing
   jobs, and stream a stable NDJSON serialization byte-identical to
   ``eclc farm run`` of the same spec — as if the crash never
   happened.
2. **Worker-process crash** — starts ``eclc serve -j 2`` (which
   auto-selects the process-backed pool), SIGKILLs one of the worker
   children mid-batch, and asserts the *same* batch still completes
   with the same byte-identical rows, no restart required: a dead
   child degrades one dispatch, never the service.

Usage::

    PYTHONPATH=src python scripts/serve_crash_smoke.py
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main as eclc  # noqa: E402
from repro.designs import PROTOCOL_STACK_ECL  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

#: ~20 jobs at ~10 ms each: a wide-enough window to land the SIGKILL
#: between the first recorded row and batch completion.
SPEC_JOBS = [
    {"design": "stack", "modules": ["toplevel"],
     "engines": ["native", "efsm"], "traces": 10, "length": 400,
     "seed": 7},
]

STABLE_VOLATILE = ("elapsed", "trace_path", "worker_pid")


def stable_bytes(row):
    payload = {key: value for key, value in row.items()
               if key not in STABLE_VOLATILE}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def start_server(data_root, jobs=1):
    """Launch ``eclc serve`` on a free port; returns (process, port,
    banner lines printed before the listen announcement)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--data-root", data_root, "-j", str(jobs)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
    )
    banner = []
    for _ in range(5):  # recovery summary may precede the listen line
        line = process.stdout.readline()
        if not line:
            break
        banner.append(line.rstrip("\n"))
        match = re.search(r"listening on [^:]+:(\d+)", line)
        if match:
            return process, int(match.group(1)), banner
    process.kill()
    raise SystemExit("serve did not announce a port: %r" % banner)


def kill_mid_batch(process, client, batch_id, total):
    """Poll until the batch is partially complete, then SIGKILL."""
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        completed = client.batch_status(batch_id)["completed"]
        if completed >= 2:
            break
        time.sleep(0.005)
    else:
        raise SystemExit("batch never made progress")
    process.kill()  # SIGKILL: no atexit, no flush, no goodbye
    process.wait(timeout=30)
    assert completed < total, (
        "batch finished (%d/%d) before the kill landed; widen the "
        "spec" % (completed, total))
    print("crash smoke: killed server at %d/%d rows"
          % (completed, total))


def ground_truth(workdir):
    """Fault-free rows: the same spec straight through the farm."""
    stack_path = os.path.join(workdir, "stack.ecl")
    with open(stack_path, "w") as handle:
        handle.write(PROTOCOL_STACK_ECL)
    spec_path = os.path.join(workdir, "batch.json")
    with open(spec_path, "w") as handle:
        json.dump({"workers": 1, "ledger": "direct-ledger",
                   "designs": {"stack": stack_path},
                   "jobs": SPEC_JOBS}, handle)
    report_path = os.path.join(workdir, "report.json")
    rc = eclc(["farm", "run", "--spec", spec_path,
               "--report", report_path])
    assert rc == 0, "eclc farm run exited %d" % rc
    with open(report_path) as handle:
        return sorted(json.load(handle)["results"],
                      key=lambda row: row["index"])


def assert_rows_match(streamed, direct, total, label):
    assert len(streamed) == len(direct) == total, (
        "%s: expected %d rows, got %d streamed / %d direct"
        % (label, total, len(streamed), len(direct)))
    bad = [row["status"] for row in streamed if row["status"] != "ok"]
    assert not bad, "%s: non-ok rows: %r" % (label, bad)
    for service_row, farm_row in zip(streamed, direct):
        left = json.dumps(service_row, sort_keys=True,
                          separators=(",", ":"))
        right = stable_bytes(farm_row)
        assert left == right, (
            "%s: row %d diverged:\n  serve: %s\n  farm:  %s"
            % (label, service_row["index"], left, right))


def batch_document():
    return {
        "designs": {"stack": {"text": PROTOCOL_STACK_ECL}},
        "jobs": [dict(entry) for entry in SPEC_JOBS],
    }


def run(direct):
    workdir = tempfile.mkdtemp(prefix="serve-crash-smoke-")
    data_root = os.path.join(workdir, "serve-data")
    document = batch_document()

    process, port, _ = start_server(data_root)
    killed = False
    try:
        client = ServeClient(port=port)
        admitted = client.submit(document)
        batch_id, total = admitted["batch"], admitted["jobs"]
        kill_mid_batch(process, client, batch_id, total)
        killed = True
    finally:
        if not killed and process.poll() is None:
            process.kill()

    # restart on the same data root: --recover is the default
    process, port, banner = start_server(data_root)
    try:
        recovery = [line for line in banner if "recovered" in line]
        assert recovery, "no recovery banner in %r" % banner
        print("crash smoke: %s" % recovery[0])

        client = ServeClient(port=port)
        streamed = sorted(client.stream_results(batch_id, stable=True),
                          key=lambda row: row["index"])
        health = client.health()
        assert health["ok"], "revived service is not healthy: %r" % health
        client.shutdown()
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()

    assert_rows_match(streamed, direct, total, "server crash")
    print("crash smoke: %d rows byte-identical to eclc farm run "
          "after SIGKILL + recovery" % len(streamed))


def run_worker_kill(direct):
    """Phase 2: SIGKILL a worker *child* of a process-pool server
    mid-batch; the same server must finish the batch correctly."""
    workdir = tempfile.mkdtemp(prefix="serve-proc-smoke-")
    data_root = os.path.join(workdir, "serve-data")

    # -j 2 auto-selects the process-backed pool
    process, port, banner = start_server(data_root, jobs=2)
    try:
        assert any("process workers" in line for line in banner), (
            "expected a process-pool banner, got %r" % banner)
        client = ServeClient(port=port)
        admitted = client.submit(batch_document())
        batch_id, total = admitted["batch"], admitted["jobs"]

        # wait for a live child pid, then SIGKILL it mid-batch
        deadline = time.monotonic() + 60
        victim = None
        while time.monotonic() < deadline:
            status = client.status()
            pids = status["pool"].get("process_pids", [])
            completed = client.batch_status(batch_id)["completed"]
            if pids and completed < total:
                victim = pids[0]
                break
            if completed >= total:
                raise SystemExit(
                    "batch finished before a child pid appeared; "
                    "widen the spec")
            time.sleep(0.005)
        assert victim is not None, "no worker child pid surfaced"
        os.kill(victim, signal.SIGKILL)
        print("crash smoke: SIGKILLed worker child %d mid-batch"
              % victim)

        streamed = sorted(client.stream_results(batch_id, stable=True),
                          key=lambda row: row["index"])
        # mid-job the kill surfaces as a crash; between jobs it
        # surfaces as a replacement spawn — either way the pool must
        # have noticed.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            pool = client.status()["pool"]
            if (pool.get("proc_crashes", 0)
                    + pool.get("proc_restarts", 0)) >= 1:
                break
            time.sleep(0.05)
        else:
            raise SystemExit("pool never noticed the dead child: %r"
                             % pool)
        client.shutdown()
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()

    assert_rows_match(streamed, direct, total, "worker kill")
    print("crash smoke: %d rows byte-identical to eclc farm run "
          "after worker-child SIGKILL (no restart)" % len(streamed))


if __name__ == "__main__":
    truth_dir = tempfile.mkdtemp(prefix="serve-smoke-truth-")
    direct_rows = ground_truth(truth_dir)
    run(direct_rows)
    run_worker_kill(direct_rows)
