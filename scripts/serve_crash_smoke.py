"""CI smoke test for crash recovery: SIGKILL mid-batch, then resume.

Starts ``eclc serve`` with a durable data root, submits a batch over
HTTP, SIGKILLs the server while the batch is partially complete, and
restarts it with ``--recover`` (the default) on the same data root.
The revived service must re-admit the unfinished batch from its
journal, replay the rows that were already recorded, re-execute only
the missing jobs, and stream a stable NDJSON serialization that is
byte-identical to ``eclc farm run`` of the same spec — as if the
crash never happened.

Usage::

    PYTHONPATH=src python scripts/serve_crash_smoke.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main as eclc  # noqa: E402
from repro.designs import PROTOCOL_STACK_ECL  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

#: ~20 jobs at ~10 ms each: a wide-enough window to land the SIGKILL
#: between the first recorded row and batch completion.
SPEC_JOBS = [
    {"design": "stack", "modules": ["toplevel"],
     "engines": ["native", "efsm"], "traces": 10, "length": 400,
     "seed": 7},
]

STABLE_VOLATILE = ("elapsed", "trace_path", "worker_pid")


def stable_bytes(row):
    payload = {key: value for key, value in row.items()
               if key not in STABLE_VOLATILE}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def start_server(data_root):
    """Launch ``eclc serve`` on a free port; returns (process, port,
    banner lines printed before the listen announcement)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--data-root", data_root, "-j", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
    )
    banner = []
    for _ in range(5):  # recovery summary may precede the listen line
        line = process.stdout.readline()
        if not line:
            break
        banner.append(line.rstrip("\n"))
        match = re.search(r"listening on [^:]+:(\d+)", line)
        if match:
            return process, int(match.group(1)), banner
    process.kill()
    raise SystemExit("serve did not announce a port: %r" % banner)


def kill_mid_batch(process, client, batch_id, total):
    """Poll until the batch is partially complete, then SIGKILL."""
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        completed = client.batch_status(batch_id)["completed"]
        if completed >= 2:
            break
        time.sleep(0.005)
    else:
        raise SystemExit("batch never made progress")
    process.kill()  # SIGKILL: no atexit, no flush, no goodbye
    process.wait(timeout=30)
    assert completed < total, (
        "batch finished (%d/%d) before the kill landed; widen the "
        "spec" % (completed, total))
    print("crash smoke: killed server at %d/%d rows"
          % (completed, total))


def run():
    workdir = tempfile.mkdtemp(prefix="serve-crash-smoke-")
    data_root = os.path.join(workdir, "serve-data")
    document = {
        "designs": {"stack": {"text": PROTOCOL_STACK_ECL}},
        "jobs": [dict(entry) for entry in SPEC_JOBS],
    }

    process, port, _ = start_server(data_root)
    killed = False
    try:
        client = ServeClient(port=port)
        admitted = client.submit(document)
        batch_id, total = admitted["batch"], admitted["jobs"]
        kill_mid_batch(process, client, batch_id, total)
        killed = True
    finally:
        if not killed and process.poll() is None:
            process.kill()

    # restart on the same data root: --recover is the default
    process, port, banner = start_server(data_root)
    try:
        recovery = [line for line in banner if "recovered" in line]
        assert recovery, "no recovery banner in %r" % banner
        print("crash smoke: %s" % recovery[0])

        client = ServeClient(port=port)
        streamed = sorted(client.stream_results(batch_id, stable=True),
                          key=lambda row: row["index"])
        health = client.health()
        assert health["ok"], "revived service is not healthy: %r" % health
        client.shutdown()
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()

    # fault-free ground truth: the same spec straight through the farm
    stack_path = os.path.join(workdir, "stack.ecl")
    with open(stack_path, "w") as handle:
        handle.write(PROTOCOL_STACK_ECL)
    spec_path = os.path.join(workdir, "batch.json")
    with open(spec_path, "w") as handle:
        json.dump({"workers": 1, "ledger": "direct-ledger",
                   "designs": {"stack": stack_path},
                   "jobs": SPEC_JOBS}, handle)
    report_path = os.path.join(workdir, "report.json")
    rc = eclc(["farm", "run", "--spec", spec_path,
               "--report", report_path])
    assert rc == 0, "eclc farm run exited %d" % rc
    with open(report_path) as handle:
        direct = sorted(json.load(handle)["results"],
                        key=lambda row: row["index"])

    assert len(streamed) == len(direct) == total, (
        "expected %d rows, got %d streamed / %d direct"
        % (total, len(streamed), len(direct)))
    bad = [row["status"] for row in streamed if row["status"] != "ok"]
    assert not bad, "non-ok rows after recovery: %r" % bad
    for service_row, farm_row in zip(streamed, direct):
        left = json.dumps(service_row, sort_keys=True,
                          separators=(",", ":"))
        right = stable_bytes(farm_row)
        assert left == right, (
            "row %d diverged after recovery:\n  serve: %s\n  farm:  %s"
            % (service_row["index"], left, right))
    print("crash smoke: %d rows byte-identical to eclc farm run "
          "after SIGKILL + recovery" % len(streamed))


if __name__ == "__main__":
    run()
